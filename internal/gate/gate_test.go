package gate

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"lf"
	"lf/internal/fault"
)

// testCapture simulates one reader's epoch and returns its samples
// plus a decoder config tuned for the suite: bounded-memory streaming
// (CalibSamples) with SIC off so sessions retain a window, not the
// whole capture.
func testCapture(t *testing.T, tags int, seed int64) ([]complex128, lf.DecoderConfig) {
	t.Helper()
	net, err := lf.NewNetwork(lf.NetworkConfig{NumTags: tags, PayloadSeconds: 2e-3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	cfg := net.DecoderConfig()
	cfg.CalibSamples = 32768
	cfg.CancellationRounds = -1
	return ep.Capture.Samples, cfg
}

// localFrames runs the reference decode: an independent
// lf.Decoder.NewStream over the same samples, collecting frames
// through the same constructor the gateway publishes with. Gateway
// output must be byte-identical to this at any wire chunking, push
// blocking, or transport fault pattern.
func localFrames(t *testing.T, samples []complex128, dcfg lf.DecoderConfig, reader string, nonce uint64) []*Frame {
	t.Helper()
	var frames []*Frame
	dcfg.OnFrame = func(sr *lf.StreamResult) {
		frames = append(frames, FrameOf(reader, nonce, len(frames), sr))
	}
	dec, err := lf.NewDecoder(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := dec.NewStream()
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(samples); lo += 8192 {
		hi := min(lo+8192, len(samples))
		if err := sd.Push(samples[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sd.Flush(); err != nil {
		t.Fatal(err)
	}
	return frames
}

// TestGateLoopbackMatchesLocal is the in-package smoke: two readers
// with different captures through one gateway, frames byte-identical
// to local decodes. (The full block × fault × transport matrix lives
// in gate_equivalence_test.go at the repo root.)
func TestGateLoopbackMatchesLocal(t *testing.T) {
	samplesA, cfg := testCapture(t, 3, 21)
	samplesB, _ := testCapture(t, 3, 22)

	res, err := Loopback(context.Background(), Config{Decoder: cfg}, map[string]LoopbackReader{
		"r0": {Samples: samplesA, SampleRate: cfg.SampleRate, Nonce: 1, Block: 4096},
		"r1": {Samples: samplesB, SampleRate: cfg.SampleRate, Nonce: 2, Block: 4096},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantA := localFrames(t, samplesA, cfg, "r0", 1)
	wantB := localFrames(t, samplesB, cfg, "r1", 2)
	if len(wantA) == 0 || len(wantB) == 0 {
		t.Fatal("vacuous: local decode produced no frames")
	}
	if !reflect.DeepEqual(res.Frames["r0"], wantA) {
		t.Errorf("reader r0 gateway frames diverged from local decode (%d vs %d frames)", len(res.Frames["r0"]), len(wantA))
	}
	if !reflect.DeepEqual(res.Frames["r1"], wantB) {
		t.Errorf("reader r1 gateway frames diverged from local decode (%d vs %d frames)", len(res.Frames["r1"]), len(wantB))
	}
	if res.Gateway.Counter("gate.frames") != int64(len(wantA)+len(wantB)) {
		t.Errorf("gate.frames = %d, want %d", res.Gateway.Counter("gate.frames"), len(wantA)+len(wantB))
	}
	if res.Gateway.Counter("gate.readers") != 2 {
		t.Errorf("gate.readers = %d, want 2", res.Gateway.Counter("gate.readers"))
	}
	if res.Gateway.Counter("gate.bytes") == 0 {
		t.Error("no bytes crossed the wire")
	}
	if len(res.ReaderStats) != 2 {
		t.Errorf("ReaderStats has %d readers, want 2", len(res.ReaderStats))
	}
}

// TestGateResumeAcrossReconnect drives the resume protocol by hand: a
// reader pushes part of its capture, its client dies, and a second
// client with the same (name, nonce) picks the session up at the acked
// offset and completes it. Frames must match an uninterrupted local
// decode exactly.
func TestGateResumeAcrossReconnect(t *testing.T) {
	samples, cfg := testCapture(t, 3, 31)
	collect := newCollectSink()
	g, err := NewGateway(Config{Decoder: cfg, Sinks: []Sink{collect}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })

	ctx := context.Background()
	ccfg := ClientConfig{Addr: g.Addr(), Name: "r0", Nonce: 7, SampleRate: cfg.SampleRate, ChunkSamples: 4096}
	c1, err := DialClient(ctx, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	half := len(samples) / 2
	if err := c1.Push(samples[:half]); err != nil {
		t.Fatal(err)
	}
	acked := c1.Acked()
	if acked == 0 {
		t.Fatal("nothing acked before the kill")
	}
	c1.Close() // dies without End; the session stays resumable

	c2, err := DialClient(ctx, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Acked(); got != acked {
		t.Fatalf("resume offset %d, want %d", got, acked)
	}
	if err := c2.Push(samples[acked:]); err != nil {
		t.Fatal(err)
	}
	frames, err := c2.End()
	if err != nil {
		t.Fatal(err)
	}
	want := localFrames(t, samples, cfg, "r0", 7)
	if len(want) == 0 {
		t.Fatal("vacuous: local decode produced no frames")
	}
	if frames != len(want) {
		t.Fatalf("gateway reported %d frames, want %d", frames, len(want))
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if got := collect.take()["r0"]; !reflect.DeepEqual(got, want) {
		t.Errorf("resumed decode diverged from local (%d vs %d frames)", len(got), len(want))
	}
}

// TestGateKillMidStreamFlushes pins the disconnect contract: a reader
// that vanishes mid-capture gets its session flushed after FlushAfter,
// and every frame already committed is published — byte-identical to a
// local decode of exactly the ingested prefix. A late-returning reader
// is told the session is over (ErrFlushed), not silently restarted.
func TestGateKillMidStreamFlushes(t *testing.T) {
	samples, cfg := testCapture(t, 3, 41)
	collect := newCollectSink()
	g, err := NewGateway(Config{Decoder: cfg, Sinks: []Sink{collect}, FlushAfter: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })

	ctx := context.Background()
	ccfg := ClientConfig{Addr: g.Addr(), Name: "r0", Nonce: 9, SampleRate: cfg.SampleRate, ChunkSamples: 4096}
	c1, err := DialClient(ctx, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Push(samples[:3*len(samples)/4]); err != nil {
		t.Fatal(err)
	}
	acked := c1.Acked() // exactly what the gateway ingested
	c1.Close()

	// The session must be flushed without any reader asking — observable
	// from outside via ReaderStats, which folds only at flush.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, flushed := g.ReaderStats()["r0"]; flushed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("disconnect flush never happened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Everything committed for the ingested prefix was published,
	// byte-identical to a local decode of exactly those samples.
	want := localFrames(t, samples[:acked], cfg, "r0", 9)
	if got := collect.take()["r0"]; !reflect.DeepEqual(got, want) {
		t.Fatalf("flushed frames diverged from local prefix decode (%d vs %d frames)", len(got), len(want))
	}

	// A late resume learns the session is done; pushing more is refused
	// loudly, never silently dropped.
	c2, err := DialClient(ctx, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Push(samples[acked:]); !errors.Is(err, ErrFlushed) {
		t.Fatalf("push after flush returned %v, want ErrFlushed", err)
	}
}

// TestGateConnectDisconnectStorm mirrors internal/dist's lifecycle
// pattern: a pile of readers under connection-killing transport faults
// all complete byte-identically, and the gateway winds down without
// leaking goroutines.
func TestGateConnectDisconnectStorm(t *testing.T) {
	before := runtime.NumGoroutine()

	samples, cfg := testCapture(t, 3, 51)
	readers := map[string]LoopbackReader{}
	want := map[string][]*Frame{}
	names := []string{"r0", "r1", "r2", "r3", "r4", "r5"}
	for i, name := range names {
		readers[name] = LoopbackReader{
			Samples:    samples,
			SampleRate: cfg.SampleRate,
			Nonce:      uint64(i + 1),
			Block:      4096,
			Seed:       int64(i + 1),
			Transport: fault.TransportConfig{
				Seed:      int64(900 + i),
				Injectors: []fault.Injector{{Kind: fault.ConnDrop, Severity: 0.7}},
			},
		}
		want[name] = localFrames(t, samples, cfg, name, uint64(i+1))
	}
	if len(want["r0"]) == 0 {
		t.Fatal("vacuous: local decode produced no frames")
	}

	res, err := Loopback(context.Background(), Config{
		Decoder:    cfg,
		FlushAfter: 10 * time.Second, // a storm drop must never be mistaken for abandonment
	}, readers)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if !reflect.DeepEqual(res.Frames[name], want[name]) {
			t.Errorf("reader %s diverged from local decode under storm (%d vs %d frames)", name, len(res.Frames[name]), len(want[name]))
		}
	}
	if res.Gateway.Counter("gate.readers") != int64(len(names)) {
		t.Errorf("gate.readers = %d, want %d", res.Gateway.Counter("gate.readers"), len(names))
	}

	// Leak check: everything the gateway and the storm spawned is gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before storm, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGateDoubleClose pins Close idempotency: closing a gateway with a
// live, mid-capture reader severs it, flushes the session best-effort,
// and a second Close (including concurrent ones) is a no-op.
func TestGateDoubleClose(t *testing.T) {
	samples, cfg := testCapture(t, 3, 61)
	collect := newCollectSink()
	g, err := NewGateway(Config{Decoder: cfg, Sinks: []Sink{collect}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	c, err := DialClient(ctx, ClientConfig{
		Addr: g.Addr(), Name: "r0", Nonce: 3, SampleRate: cfg.SampleRate,
		ChunkSamples: 4096, MaxAttempts: 2, BackoffMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Push(samples[:len(samples)/2]); err != nil {
		t.Fatal(err)
	}
	acked := c.Acked()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	wg.Wait()
	if err := g.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// The mid-capture session was flushed on shutdown: committed frames
	// for the ingested prefix were published, not lost.
	want := localFrames(t, samples[:acked], cfg, "r0", 3)
	if got := collect.take()["r0"]; !reflect.DeepEqual(got, want) {
		t.Errorf("shutdown flush published %d frames, local prefix decode has %d", len(got), len(want))
	}

	// The severed client fails loudly once its retries exhaust.
	if err := c.Push(samples[len(samples)/2:]); err == nil {
		if _, err := c.End(); err == nil {
			t.Error("client survived gateway shutdown without an error")
		}
	}
}

// slowSink delays every publish — the deliberately slow consumer of
// the backpressure property test.
type slowSink struct {
	delay time.Duration
	inner *collectSink
}

func (s *slowSink) Publish(f *Frame) error {
	time.Sleep(s.delay)
	return s.inner.Publish(f)
}
func (s *slowSink) Close() error { return s.inner.Close() }

// TestGateBackpressureSlowSink is the backpressure property test.
//
// Part 1 (bound holds): with a deliberately slow sink and a sane
// bound, every reader's RetainedBytes admission signal stays under the
// bound (gate.retained_peak is its high-water mark) and every frame
// arrives complete and in order — slowness never reorders or drops.
//
// Part 2 (gate engages): with SIC enabled a session's retention grows
// with the capture, so a tiny bound must actually throttle ingest
// (gate.backpressure_ns > 0) — and still decode byte-identically:
// flow-controlled, never dropped.
func TestGateBackpressureSlowSink(t *testing.T) {
	samples, cfg := testCapture(t, 3, 71)

	t.Run("bound-holds", func(t *testing.T) {
		bound := int64(64 << 20)
		readers := map[string]LoopbackReader{}
		want := map[string][]*Frame{}
		for i, name := range []string{"r0", "r1", "r2"} {
			readers[name] = LoopbackReader{Samples: samples, SampleRate: cfg.SampleRate, Nonce: uint64(i + 1), Block: 4096}
			want[name] = localFrames(t, samples, cfg, name, uint64(i+1))
		}
		if len(want["r0"]) == 0 {
			t.Fatal("vacuous: local decode produced no frames")
		}
		res, err := Loopback(context.Background(), Config{
			Decoder:     cfg,
			MaxRetained: bound,
			Sinks:       []Sink{&slowSink{delay: 3 * time.Millisecond, inner: newCollectSink()}},
		}, readers)
		if err != nil {
			t.Fatal(err)
		}
		for name := range readers {
			got := res.Frames[name]
			if !reflect.DeepEqual(got, want[name]) {
				t.Errorf("reader %s frames reordered or dropped under slow sink (%d vs %d)", name, len(got), len(want[name]))
			}
			for i, f := range got {
				if f.Index != i {
					t.Fatalf("reader %s frame %d carries index %d — reordered", name, i, f.Index)
				}
			}
		}
		if peak := res.Gateway.Gauges["gate.retained_peak"]; peak >= bound {
			t.Errorf("admission signal peaked at %d, bound %d — backpressure bound violated", peak, bound)
		}
	})

	t.Run("gate-engages", func(t *testing.T) {
		sicCfg := cfg
		sicCfg.CancellationRounds = 0 // default rounds: retention grows O(capture)
		want := localFrames(t, samples, sicCfg, "r0", 1)
		res, err := Loopback(context.Background(), Config{
			Decoder:     sicCfg,
			MaxRetained: 256 << 10, // far below the capture's O(capture) retention
			MaxThrottle: 50 * time.Millisecond,
		}, map[string]LoopbackReader{
			"r0": {Samples: samples, SampleRate: sicCfg.SampleRate, Nonce: 1, Block: 8192},
		})
		if err != nil {
			t.Fatal(err)
		}
		if bp := res.Gateway.Counter("gate.backpressure_ns"); bp == 0 {
			t.Error("tiny bound never engaged the admission gate")
		}
		if !reflect.DeepEqual(res.Frames["r0"], want) {
			t.Errorf("throttled decode diverged from local (%d vs %d frames) — flow control must not change bytes", len(res.Frames["r0"]), len(want))
		}
	})
}

// TestGateSnapshotSink pins the TagPack-style sink contract: latest
// frame per tag across readers, atomic debounced snapshots, and
// coalescing inside the debounce window.
func TestGateSnapshotSink(t *testing.T) {
	s := NewSnapshotSink(time.Hour) // debounce long enough to observe staleness
	f1 := &Frame{Reader: "r0", Capture: 1, Index: 0, Bits: []byte{1, 0, 1}, Confidence: 0.5}
	f2 := &Frame{Reader: "r1", Capture: 2, Index: 0, Bits: []byte{1, 0, 1}, Confidence: 0.9}
	f3 := &Frame{Reader: "r0", Capture: 1, Index: 1, Bits: []byte{0, 1, 1}}

	if err := s.Publish(f1); err != nil { // first publish lands immediately (nothing debounced yet)
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if len(snap) != 1 || snap["101"] == nil || snap["101"].Reader != "r0" {
		t.Fatalf("first snapshot = %v, want one tag 101 from r0", snap)
	}
	if err := s.Publish(f2); err != nil { // same tag from another reader: debounced
		t.Fatal(err)
	}
	if err := s.Publish(f3); err != nil { // new tag: same debounce window
		t.Fatal(err)
	}
	if got := s.Snapshot(); len(got) != 1 {
		t.Fatalf("snapshot rebuilt inside debounce window: %d tags", len(got))
	}
	s.Sync()
	snap = s.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("after sync: %d tags, want 2", len(snap))
	}
	if snap["101"].Reader != "r1" {
		t.Errorf("tag 101 latest reader = %q, want r1 (latest frame wins across readers)", snap["101"].Reader)
	}
	if snap["011"].Reader != "r0" {
		t.Errorf("tag 011 reader = %q, want r0", snap["011"].Reader)
	}
	if s.Seq() != 3 {
		t.Errorf("seq = %d, want 3", s.Seq())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Publish(f1); err == nil {
		t.Error("publish after close succeeded")
	}
}
