package gate

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"lf"
	"lf/internal/fault"
	"lf/internal/obs"
)

// Config tunes the gateway.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for tests). Ignored
	// when Listener is set.
	Addr string
	// Listener, when non-nil, is used instead of listening on Addr (the
	// caller keeps ownership of the choice, the gateway of the
	// lifecycle: Close closes it).
	Listener net.Listener

	// Decoder is the per-session decoder template: every reader session
	// gets its own lf.Decoder built from a copy of it (OnFrame is
	// overwritten with the gateway's publisher; SampleRate is taken
	// from the session hello when the hello carries one). Set
	// CalibSamples for bounded-memory streaming and note that enabled
	// SIC (CancellationRounds ≥ 0) retains O(capture) memory, which the
	// MaxRetained admission bound must accommodate.
	Decoder lf.DecoderConfig

	// Workers bounds the shared decode fleet: at most this many
	// sessions advance a Push or Flush at once, however many readers
	// are connected. 0 selects GOMAXPROCS.
	Workers int

	// MaxRetained is the per-reader backpressure bound, in bytes:
	// a chunk is admitted into the session's decoder only once the
	// session's RetainedBytes sits below it. While over the bound the
	// gateway simply withholds the ack — the reader's send window
	// fills and the reader blocks, flow-controlled, never dropped.
	// 0 selects 1 GiB. It must exceed the decoder's resident window
	// (calibration + Viterbi horizon + stage queues) or throttling
	// degrades to MaxThrottle pacing.
	MaxRetained int64
	// MaxThrottle caps how long one chunk may wait in the admission
	// gate before being admitted anyway — the escape hatch that keeps a
	// bound set below the decoder's resident window from wedging a
	// session forever. 0 selects 2s.
	MaxThrottle time.Duration

	// FlushAfter is the disconnect grace period: a session whose reader
	// has been gone this long is flushed best-effort, publishing every
	// frame already committed, and marked done (a late-returning reader
	// learns this from its welcome). 0 selects 3s.
	FlushAfter time.Duration
	// SessionTTL is how long a finished session's record (resume state,
	// frame count) is kept for late-returning readers before it is
	// pruned. 0 selects 10×FlushAfter.
	SessionTTL time.Duration
	// IdleTimeout bounds the wait for the next frame on a reader
	// connection; a reader silent this long is presumed dead and its
	// connection dropped (the session then rides the FlushAfter path).
	// 0 selects 30s.
	IdleTimeout time.Duration

	// Sinks receive every published frame, in commit order. The gateway
	// serializes Publish calls and calls Close exactly once on
	// shutdown. A sink error is counted and logged, never propagated to
	// the reader.
	Sinks []Sink

	// Transport, when active, impairs every accepted connection with
	// the seeded wire injectors (tests).
	Transport fault.TransportConfig
	// Registry receives the gate.* runtime metrics; the gateway owns
	// its own registry by default, keeping gateway counters out of the
	// per-session decode stats.
	Registry *obs.Registry
	// Logf, when non-nil, receives gateway lifecycle logs.
	Logf func(string, ...any)
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxRetained <= 0 {
		cfg.MaxRetained = 1 << 30
	}
	if cfg.MaxThrottle <= 0 {
		cfg.MaxThrottle = 2 * time.Second
	}
	if cfg.FlushAfter <= 0 {
		cfg.FlushAfter = 3 * time.Second
	}
	if cfg.SessionTTL <= 0 {
		cfg.SessionTTL = 10 * cfg.FlushAfter
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 30 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

// throttlePoll is the admission gate's RetainedBytes re-check cadence.
const throttlePoll = 200 * time.Microsecond

// errStolen aborts a connection's work when a reconnecting reader has
// taken its session over; the stale connection just dies quietly.
var errStolen = errors.New("gate: session taken over by reconnect")

// session is one capture's ingest state, keyed by (reader, nonce). It
// outlives the connections that serve it: a disconnect detaches the
// session, a resume re-attaches it, and only FlushAfter of sustained
// absence (or an explicit End) finishes it.
type session struct {
	key   string
	name  string
	nonce uint64

	// mu serializes decode progress (Push/Flush) and guards the fields
	// below. Lock order everywhere: fleet slot → session.mu → sinkMu.
	mu         sync.Mutex
	conn       net.Conn // owning connection; nil while detached
	have       int64    // samples ingested (the resume point)
	frames     uint32   // frames published so far
	done       bool     // flushed (or failed); have/frames are final
	failed     error    // latched decode error, nil unless stateFailed
	detachedAt time.Time
	doneAt     time.Time

	dec *lf.Decoder
	sd  *lf.StreamDecoder
}

func (s *session) state() (byte, string) {
	switch {
	case s.failed != nil:
		return stateFailed, s.failed.Error()
	case s.done:
		return stateDone, ""
	default:
		return stateActive, ""
	}
}

// Gateway is the reader-facing ingest service.
type Gateway struct {
	cfg   Config
	ln    net.Listener
	m     obs.GateMetrics
	slots chan struct{} // shared decode fleet: one token per worker

	mu        sync.Mutex
	sessions  map[string]*session
	conns     map[net.Conn]struct{}
	connected int
	connSeq   uint64
	readerAgg map[string]*obs.Snapshot // per reader name, folded at flush
	closed    bool

	closedCh  chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error

	sinkMu sync.Mutex
}

// NewGateway starts a gateway listening for reader connections.
func NewGateway(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("gate: listen: %w", err)
		}
	}
	g := &Gateway{
		cfg:       cfg,
		ln:        ln,
		m:         obs.NewGateMetrics(cfg.Registry),
		slots:     make(chan struct{}, cfg.Workers),
		sessions:  make(map[string]*session),
		conns:     make(map[net.Conn]struct{}),
		readerAgg: make(map[string]*obs.Snapshot),
		closedCh:  make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		g.slots <- struct{}{}
	}
	g.wg.Add(2)
	go g.acceptLoop()
	go g.reaper()
	return g, nil
}

// Addr reports the gateway's listen address.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// Stats snapshots the gateway-level gate.* metrics.
func (g *Gateway) Stats() *obs.Snapshot { return g.cfg.Registry.Snapshot() }

// ReaderStats returns the accumulated decode-class stats per reader
// name, folded from every session flushed so far. The decode-class
// identity of each reader's entry matches a local decode of the same
// captures (gateway transport never influences a decoded bit).
func (g *Gateway) ReaderStats() map[string]*obs.Snapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]*obs.Snapshot, len(g.readerAgg))
	for name, agg := range g.readerAgg {
		s := obs.NewSnapshot()
		s.Add(agg)
		out[name] = s
	}
	return out
}

func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			select {
			case <-g.closedCh:
			default:
				g.cfg.Logf("gate: accept: %v", err)
			}
			return
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			conn.Close()
			return
		}
		g.connSeq++
		id := g.connSeq
		wrapped := g.cfg.Transport.Wrap(&countingConn{Conn: conn, n: g.m.Bytes}, id)
		g.conns[wrapped] = struct{}{}
		g.connected++
		g.m.Connected.Max(int64(g.connected))
		g.wg.Add(1)
		g.mu.Unlock()
		go g.serve(wrapped)
	}
}

// countingConn totals bytes both directions into an obs counter — the
// innermost wrapper, so it counts what the fault injectors let
// through.
type countingConn struct {
	net.Conn
	n *obs.Counter
}

func (cc *countingConn) Read(p []byte) (int, error) {
	n, err := cc.Conn.Read(p)
	cc.n.Add(int64(n))
	return n, err
}

func (cc *countingConn) Write(p []byte) (int, error) {
	n, err := cc.Conn.Write(p)
	cc.n.Add(int64(n))
	return n, err
}

func (g *Gateway) serve(conn net.Conn) {
	defer g.wg.Done()
	defer func() {
		conn.Close()
		g.mu.Lock()
		delete(g.conns, conn)
		g.connected--
		g.mu.Unlock()
	}()

	conn.SetReadDeadline(time.Now().Add(g.cfg.IdleTimeout))
	typ, payload, err := readFrame(conn)
	if err != nil || typ != msgHello {
		return
	}
	hello, err := decodeHello(payload)
	if err != nil {
		return
	}
	if hello.Version != protoVersion {
		e := &wireErrMsg{Msg: fmt.Sprintf("gate: protocol version %d, want %d", hello.Version, protoVersion)}
		writeFrame(conn, msgErr, e.encode())
		return
	}
	s, welcome, err := g.attach(hello, conn)
	if err != nil {
		e := &wireErrMsg{Msg: err.Error()}
		writeFrame(conn, msgErr, e.encode())
		return
	}
	defer g.detach(s, conn)
	if err := writeFrame(conn, msgWelcome, welcome.encode()); err != nil {
		return
	}
	g.cfg.Logf("gate: reader %q capture %x attached from %s (resume at %d)", s.name, s.nonce, conn.RemoteAddr(), welcome.Have)

	for {
		conn.SetReadDeadline(time.Now().Add(g.cfg.IdleTimeout))
		typ, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case msgChunk:
			c, err := decodeChunk(payload)
			if err != nil {
				g.cfg.Logf("gate: reader %q: %v", s.name, err)
				return
			}
			have, err := g.pushChunk(s, conn, c)
			if err != nil {
				if s.isFailed() {
					e := &wireErrMsg{Msg: err.Error()}
					writeFrame(conn, msgErr, e.encode())
				}
				return
			}
			ack := &wireAck{Have: have}
			if err := writeFrame(conn, msgAck, ack.encode()); err != nil {
				return
			}
		case msgEnd:
			end, err := decodeEnd(payload)
			if err != nil {
				return
			}
			frames, err := g.endSession(s, conn, end.Total)
			if err != nil {
				if s.isFailed() {
					e := &wireErrMsg{Msg: err.Error()}
					writeFrame(conn, msgErr, e.encode())
				}
				return
			}
			done := &wireDone{Frames: frames}
			if err := writeFrame(conn, msgDone, done.encode()); err != nil {
				return
			}
		default:
			g.cfg.Logf("gate: reader %q sent unexpected frame type %d", s.name, typ)
			return
		}
	}
}

func (s *session) isFailed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed != nil
}

// attach finds or creates the session for a hello and makes conn its
// owner, severing any previous owner. It returns the welcome carrying
// the resume offset — read under the session lock, so any in-flight
// push from the previous connection has settled first.
func (g *Gateway) attach(h *wireHello, conn net.Conn) (*session, *wireWelcome, error) {
	key := fmt.Sprintf("%s/%016x", h.Name, h.Nonce)
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, nil, errors.New("gate: gateway closed")
	}
	s, ok := g.sessions[key]
	if !ok {
		dcfg := g.cfg.Decoder
		if h.Rate > 0 {
			dcfg.SampleRate = h.Rate
		}
		s = &session{key: key, name: h.Name, nonce: h.Nonce}
		dcfg.OnFrame = func(sr *lf.StreamResult) {
			// Runs on the pushing goroutine inside Push/Flush, under
			// session.mu — frames index and publish in commit order.
			f := FrameOf(s.name, s.nonce, int(s.frames), sr)
			s.frames++
			g.publish(f)
		}
		dec, err := lf.NewDecoder(dcfg)
		if err != nil {
			g.mu.Unlock()
			return nil, nil, fmt.Errorf("gate: reader %q: %w", h.Name, err)
		}
		sd, err := dec.NewStream()
		if err != nil {
			g.mu.Unlock()
			return nil, nil, fmt.Errorf("gate: reader %q: %w", h.Name, err)
		}
		s.dec, s.sd = dec, sd
		g.sessions[key] = s
		g.m.Readers.Inc()
	}
	g.mu.Unlock()

	s.mu.Lock()
	old := s.conn
	s.conn = conn
	st, msg := s.state()
	w := &wireWelcome{Version: protoVersion, Have: s.have, State: st, Frames: s.frames, Msg: msg}
	s.mu.Unlock()
	if old != nil && old != conn {
		// The previous connection is presumed dead (the reader moved
		// on); sever it so its serve loop exits instead of idling.
		old.Close()
	}
	return s, w, nil
}

func (g *Gateway) detach(s *session, conn net.Conn) {
	s.mu.Lock()
	if s.conn == conn {
		s.conn = nil
		s.detachedAt = time.Now()
	}
	s.mu.Unlock()
}

// pushChunk runs the admission gate, then feeds the chunk into the
// session's decoder. The admission gate is the backpressure mechanism:
// while the session's RetainedBytes sits at or above MaxRetained the
// chunk waits (and with it the ack, and with that the reader), up to
// MaxThrottle. Returns the new cumulative high-water mark.
func (g *Gateway) pushChunk(s *session, conn net.Conn, c *wireChunk) (int64, error) {
	// Admission: poll the retained-bytes signal without holding the
	// session lock for longer than a read, so a reconnect can still
	// steal the session away from a throttled connection.
	start := time.Now()
	throttled := time.Duration(0)
	var retained int64
	for {
		s.mu.Lock()
		if s.conn != conn {
			s.mu.Unlock()
			return 0, errStolen
		}
		if s.done {
			st := s.failed
			s.mu.Unlock()
			if st != nil {
				return 0, st
			}
			return 0, fmt.Errorf("gate: reader %q capture %x: already flushed", s.name, s.nonce)
		}
		retained = s.sd.RetainedBytes()
		s.mu.Unlock()
		if retained < g.cfg.MaxRetained {
			break
		}
		if time.Since(start) >= g.cfg.MaxThrottle {
			g.cfg.Logf("gate: reader %q: admission capped at %v (retained %d ≥ bound %d)", s.name, g.cfg.MaxThrottle, retained, g.cfg.MaxRetained)
			break
		}
		select {
		case <-g.closedCh:
			return 0, errors.New("gate: gateway closed")
		case <-time.After(throttlePoll):
		}
		throttled = time.Since(start)
	}
	if throttled > 0 {
		g.m.BackpressureNs.Add(int64(throttled))
	}
	g.m.RetainedPeak.Max(retained)

	// Fleet slot, then the session lock (global lock order).
	select {
	case <-g.slots:
	case <-g.closedCh:
		return 0, errors.New("gate: gateway closed")
	}
	defer func() { g.slots <- struct{}{} }()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != conn {
		return 0, errStolen
	}
	if s.failed != nil {
		return 0, s.failed
	}
	samples := c.Samples
	switch {
	case c.Base == s.have:
	case c.Base+int64(len(samples)) <= s.have:
		// Pure duplicate of already-ingested samples (an ack was lost);
		// re-ack the high-water mark.
		return s.have, nil
	case c.Base < s.have:
		// Partial overlap: push only the unseen tail.
		samples = samples[s.have-c.Base:]
	default:
		return 0, wireErrf("chunk base %d ahead of session offset %d", c.Base, s.have)
	}
	if len(samples) > 0 {
		if err := s.sd.Push(samples); err != nil {
			s.failed = err
			s.done = true
			s.doneAt = time.Now()
			g.foldStatsLocked(s)
			return 0, err
		}
		s.have += int64(len(samples))
	}
	return s.have, nil
}

// endSession validates the declared total and flushes. Duplicate Ends
// (a reader retrying after a lost done frame) return the cached count.
func (g *Gateway) endSession(s *session, conn net.Conn, total int64) (uint32, error) {
	s.mu.Lock()
	if !s.done && total != s.have {
		have := s.have
		s.mu.Unlock()
		// The reader believes a different sample count was ingested
		// than the gateway holds — drop the connection; the resume
		// handshake re-synchronizes and the reader completes the tail.
		return 0, wireErrf("end total %d != ingested %d", total, have)
	}
	s.mu.Unlock()
	return g.flushSession(s, conn)
}

// flushSession drains the session's decoder, publishing every frame
// still in flight, and finalizes the session. conn non-nil demands
// ownership (reader-requested flush); conn nil demands detachment
// (reaper/Close best-effort flush). Idempotent.
func (g *Gateway) flushSession(s *session, conn net.Conn) (uint32, error) {
	took := false
	select {
	case <-g.slots:
		took = true
	case <-g.closedCh:
		// Shutdown: Close drains sessions after every serve loop has
		// exited, so flushing without a slot is safe.
	}
	defer func() {
		if took {
			g.slots <- struct{}{}
		}
	}()

	s.mu.Lock()
	defer s.mu.Unlock()
	if conn != nil && s.conn != conn {
		return 0, errStolen
	}
	if conn == nil && s.conn != nil {
		// The reader resumed between the reaper's scan and now; its
		// connection owns the session again, nothing to do.
		return s.frames, nil
	}
	if s.done {
		return s.frames, s.failed
	}
	if _, err := s.sd.Flush(); err != nil {
		s.failed = err
	}
	s.done = true
	s.doneAt = time.Now()
	g.foldStatsLocked(s)
	g.cfg.Logf("gate: reader %q capture %x flushed: %d samples, %d frames", s.name, s.nonce, s.have, s.frames)
	return s.frames, s.failed
}

// foldStatsLocked folds the finished session's decode stats into the
// per-reader aggregate. Caller holds s.mu.
func (g *Gateway) foldStatsLocked(s *session) {
	st := s.dec.Stats()
	g.mu.Lock()
	agg, ok := g.readerAgg[s.name]
	if !ok {
		agg = obs.NewSnapshot()
		g.readerAgg[s.name] = agg
	}
	agg.Add(st)
	g.mu.Unlock()
}

func (g *Gateway) publish(f *Frame) {
	g.sinkMu.Lock()
	defer g.sinkMu.Unlock()
	for _, sink := range g.cfg.Sinks {
		if err := sink.Publish(f); err != nil {
			g.m.SinkErrors.Inc()
			g.cfg.Logf("gate: sink %T: %v", sink, err)
		}
	}
	g.m.Frames.Inc()
}

// reaper walks detached sessions: past FlushAfter they are flushed
// best-effort (committed frames are published, never lost), and past
// SessionTTL finished records are pruned.
func (g *Gateway) reaper() {
	defer g.wg.Done()
	tick := g.cfg.FlushAfter / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-g.closedCh:
			return
		case <-t.C:
		}
		g.mu.Lock()
		snapshot := make([]*session, 0, len(g.sessions))
		for _, s := range g.sessions {
			snapshot = append(snapshot, s)
		}
		g.mu.Unlock()
		for _, s := range snapshot {
			s.mu.Lock()
			flush := s.conn == nil && !s.done && !s.detachedAt.IsZero() && time.Since(s.detachedAt) > g.cfg.FlushAfter
			prune := s.done && time.Since(s.doneAt) > g.cfg.SessionTTL
			s.mu.Unlock()
			if flush {
				if _, err := g.flushSession(s, nil); err != nil && err != errStolen {
					g.cfg.Logf("gate: reader %q capture %x: flush after disconnect: %v", s.name, s.nonce, err)
				}
			}
			if prune {
				g.mu.Lock()
				delete(g.sessions, s.key)
				g.mu.Unlock()
			}
		}
	}
}

// Close stops accepting, severs every reader connection, flushes every
// unfinished session best-effort (committed frames are published), and
// closes the sinks. Idempotent; concurrent calls share one shutdown.
func (g *Gateway) Close() error {
	g.closeOnce.Do(func() {
		g.mu.Lock()
		g.closed = true
		close(g.closedCh)
		g.ln.Close()
		for conn := range g.conns {
			conn.Close()
		}
		g.mu.Unlock()
		g.wg.Wait()

		g.mu.Lock()
		snapshot := make([]*session, 0, len(g.sessions))
		for _, s := range g.sessions {
			snapshot = append(snapshot, s)
		}
		g.mu.Unlock()
		for _, s := range snapshot {
			if _, err := s.flushForClose(g); err != nil {
				g.cfg.Logf("gate: close: reader %q capture %x: %v", s.name, s.nonce, err)
			}
		}

		g.sinkMu.Lock()
		for _, sink := range g.cfg.Sinks {
			if err := sink.Close(); err != nil && g.closeErr == nil {
				g.closeErr = err
			}
		}
		g.sinkMu.Unlock()
	})
	return g.closeErr
}

// flushForClose finalizes a session during shutdown: every serve loop
// has exited (wg.Wait), so no ownership races remain.
func (s *session) flushForClose(g *Gateway) (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return s.frames, s.failed
	}
	if _, err := s.sd.Flush(); err != nil {
		s.failed = err
	}
	s.done = true
	s.doneAt = time.Now()
	g.foldStatsLocked(s)
	return s.frames, s.failed
}
