package gate

import (
	"bytes"
	"testing"
)

// FuzzGateFrame throws arbitrary bytes at the gateway frame reader
// and, when they parse, at the message codecs. The invariants: no
// panic, no out-of-bounds read, no huge allocation (maxFramePayload
// bounds the frame, and decodeChunk validates the sample count against
// the actual payload length before allocating), and every frame the
// writer produces round-trips through the reader byte-exactly —
// including after the fuzzer mutates seed corpora into near-valid
// frames where only the CRC distinguishes them.
func FuzzGateFrame(f *testing.F) {
	// Seed with valid frames of every message type.
	hello := &wireHello{Version: protoVersion, Name: "fuzz", Nonce: 7, Rate: 2.4e6}
	welcome := &wireWelcome{Version: protoVersion, Have: 8192, State: stateActive, Frames: 3}
	failed := &wireWelcome{Version: protoVersion, State: stateFailed, Msg: "decode failed"}
	chunk := &wireChunk{Base: 4096, Samples: []complex128{1 + 2i, 3 - 4i, complex(0.5, -0.25)}}
	ack := &wireAck{Have: 8192}
	end := &wireEnd{Total: 16384}
	done := &wireDone{Frames: 12}
	em := &wireErrMsg{Msg: "gate: boom"}
	for _, m := range []struct {
		typ byte
		p   []byte
	}{
		{msgHello, hello.encode()},
		{msgWelcome, welcome.encode()},
		{msgWelcome, failed.encode()},
		{msgChunk, chunk.encode()},
		{msgAck, ack.encode()},
		{msgEnd, end.encode()},
		{msgDone, done.encode()},
		{msgErr, em.encode()},
	} {
		var buf bytes.Buffer
		if err := writeFrame(&buf, m.typ, m.p); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// An oversized length prefix must be rejected before any allocation.
	f.Add([]byte{gateMagic0, gateMagic1, msgChunk, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A frame that passed magic + CRC must re-encode to the same
		// bytes it was read from (the reader consumed exactly one frame).
		var buf bytes.Buffer
		if werr := writeFrame(&buf, typ, payload); werr != nil {
			t.Fatalf("reread failed: %v", werr)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatal("frame did not round-trip byte-exactly")
		}
		// Message codecs must never panic on CRC-valid payloads; errors
		// are fine (that is the drop-connection path). decodeChunk in
		// particular must reject a sample count that disagrees with the
		// payload length without reading out of bounds or allocating
		// the claimed size.
		switch typ {
		case msgHello:
			decodeHello(payload)
		case msgWelcome:
			decodeWelcome(payload)
		case msgChunk:
			if c, err := decodeChunk(payload); err == nil {
				// A decodable chunk's samples are fully backed by
				// payload bytes; re-encoding must reproduce them.
				if !bytes.Equal(c.encode(), payload) {
					t.Fatal("chunk did not round-trip")
				}
			}
		case msgAck:
			decodeAck(payload)
		case msgEnd:
			decodeEnd(payload)
		case msgDone:
			decodeDone(payload)
		case msgErr:
			decodeErrMsg(payload)
		}
	})
}
