// Package gate is the fleet-scale reader gateway: a long-running
// service that accepts LFIQ sample streams from many concurrent
// readers over TCP, feeds each reader's samples into its own streaming
// decode (lf.Decoder.NewStream), multiplexes all sessions onto a
// shared bounded worker fleet with per-reader backpressure
// (RetainedBytes is the admission signal), and publishes decoded
// frames to pluggable sinks as they commit.
//
// The robustness model mirrors internal/dist: every transport failure
// is recoverable. The ingest protocol is resumable — a session is
// keyed by (reader name, capture nonce), the gateway acks cumulative
// sample offsets, and a reconnecting reader learns the gateway's
// high-water mark from the welcome frame and resends only the tail —
// so dropped connections, corrupt frames, and stalls never change the
// decoded bits (gate_equivalence_test.go pins byte-identity against
// local decodes across the fault matrix). A reader that disconnects
// and never returns gets a best-effort Flush after Config.FlushAfter,
// so frames already committed are published, not lost.
package gate

import (
	"io"

	"lf/internal/wire"
)

// Wire format: the shared framing from internal/wire —
//
//	magic(2) | type(1) | payloadLen(4, LE) | payload | crc32(4, LE)
//
// — under the 'L','G' magic so a gateway frame can never be mistaken
// for a dist frame. Samples travel as IEEE-754 bit patterns
// (re, im float64 pairs), so pushed blocks are bit-exact across hosts
// and gateway decodes can be byte-compared against local ones.
const (
	gateMagic0 = 0x4C // 'L'
	gateMagic1 = 0x47 // 'G'

	// protoVersion gates the handshake: the gateway refuses readers
	// speaking a different framing or chunk layout.
	protoVersion = 1

	// maxChunkSamples bounds one chunk's declared sample count so a
	// corrupted-but-CRC-lucky count can never drive a giant allocation.
	// Honest clients chunk at ClientConfig.ChunkSamples (default 8192),
	// far below this.
	maxChunkSamples = 1 << 20

	// maxFramePayload bounds a frame's declared payload length; a full
	// maxChunkSamples chunk (16 bytes per sample + base + count) fits.
	maxFramePayload = 17 << 20
)

// proto is this protocol's framing instance (dist's sibling).
var proto = wire.Proto{Name: "gate", Magic0: gateMagic0, Magic1: gateMagic1, MaxPayload: maxFramePayload}

// Message types.
const (
	msgHello   = 1 // reader → gateway: version, name, capture nonce, sample rate
	msgWelcome = 2 // gateway → reader: version, resume offset, session state
	msgChunk   = 3 // reader → gateway: base offset + contiguous samples
	msgAck     = 4 // gateway → reader: cumulative samples ingested
	msgEnd     = 5 // reader → gateway: total sample count, request flush
	msgDone    = 6 // gateway → reader: capture flushed, frame count
	msgErr     = 7 // gateway → reader: fatal session failure (decode error)
)

// Session states carried in the welcome frame.
const (
	stateActive = 0 // session accepting samples; resume from Have
	stateDone   = 1 // session flushed; Frames is final
	stateFailed = 2 // decode failed; Msg carries the error
)

// wireErrf builds a framing-level failure (*wire.Error). The gateway
// treats it like a dead connection — drop the conn, keep the session;
// the reader reconnects and resumes. It is never fatal to a capture.
func wireErrf(format string, args ...any) error {
	return proto.Errf(format, args...)
}

// writeFrame sends one frame. The payload is borrowed, not retained.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	return proto.WriteFrame(w, typ, payload)
}

// readFrame reads and verifies one frame, returning its type and
// payload. Errors distinguish transport failures (returned verbatim)
// from framing violations (*wire.Error).
func readFrame(r io.Reader) (byte, []byte, error) {
	return proto.ReadFrame(r)
}

// wireHello opens (or resumes) a session. Nonce distinguishes captures
// from the same reader: hello with a nonce the gateway has seen
// resumes that capture's session; a fresh nonce starts a new stream.
type wireHello struct {
	Version uint32
	Name    string
	Nonce   uint64
	Rate    float64
}

func (h *wireHello) encode() []byte {
	var e wire.Enc
	e.U32(h.Version)
	e.Str(h.Name)
	e.U64(h.Nonce)
	e.F64(h.Rate)
	return e.B
}

func decodeHello(p []byte) (*wireHello, error) {
	d := wire.NewDec(p)
	h := &wireHello{Version: d.U32(), Name: d.Str(), Nonce: d.U64(), Rate: d.F64()}
	if err := d.Done(); err != nil {
		return nil, err
	}
	if h.Name == "" || len(h.Name) > 256 {
		return nil, wireErrf("hello: bad reader name length %d", len(h.Name))
	}
	return h, nil
}

// wireWelcome answers a hello: Have is the gateway's cumulative ingest
// high-water mark for the session (the resume point — a reconnecting
// reader resends from here), State is one of stateActive/Done/Failed,
// Frames is the published frame count (final when State == stateDone),
// and Msg carries the decode error when State == stateFailed.
type wireWelcome struct {
	Version uint32
	Have    int64
	State   byte
	Frames  uint32
	Msg     string
}

func (w *wireWelcome) encode() []byte {
	var e wire.Enc
	e.U32(w.Version)
	e.I64(w.Have)
	e.U8(w.State)
	e.U32(w.Frames)
	e.Str(w.Msg)
	return e.B
}

func decodeWelcome(p []byte) (*wireWelcome, error) {
	d := wire.NewDec(p)
	w := &wireWelcome{Version: d.U32(), Have: d.I64(), State: d.U8(), Frames: d.U32(), Msg: d.Str()}
	if err := d.Done(); err != nil {
		return nil, err
	}
	if w.Have < 0 {
		return nil, wireErrf("welcome: negative resume offset %d", w.Have)
	}
	return w, nil
}

// wireChunk carries one contiguous run of samples. Base is the
// absolute offset of Samples[0] in the capture; the session contract
// is strictly in-order, so Base must equal the session's current
// high-water mark (the welcome frame told the reader where that is).
type wireChunk struct {
	Base    int64
	Samples []complex128
}

func (c *wireChunk) encode() []byte {
	e := wire.Enc{B: make([]byte, 0, 12+16*len(c.Samples))}
	e.I64(c.Base)
	e.U32(uint32(len(c.Samples)))
	for _, s := range c.Samples {
		e.F64(real(s))
		e.F64(imag(s))
	}
	return e.B
}

func decodeChunk(p []byte) (*wireChunk, error) {
	d := wire.NewDec(p)
	base := d.I64()
	n := d.U32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if base < 0 {
		return nil, wireErrf("chunk: negative base %d", base)
	}
	if n > maxChunkSamples {
		return nil, wireErrf("chunk: %d samples exceeds max %d", n, maxChunkSamples)
	}
	// Bound the declared count against the remaining payload before
	// allocating, so a corrupt count can neither read out of bounds nor
	// allocate gigabytes.
	if uint64(len(d.B)) != uint64(n)*16 {
		return nil, wireErrf("chunk: %d samples but %d payload bytes", n, len(d.B))
	}
	c := &wireChunk{Base: base, Samples: make([]complex128, n)}
	for i := range c.Samples {
		c.Samples[i] = complex(d.F64(), d.F64())
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

// wireAck acknowledges ingest: Have samples are decoded-or-buffered
// gateway-side and will never be asked for again.
type wireAck struct{ Have int64 }

func (a *wireAck) encode() []byte {
	var e wire.Enc
	e.I64(a.Have)
	return e.B
}

func decodeAck(p []byte) (*wireAck, error) {
	d := wire.NewDec(p)
	a := &wireAck{Have: d.I64()}
	if err := d.Done(); err != nil {
		return nil, err
	}
	if a.Have < 0 {
		return nil, wireErrf("ack: negative offset %d", a.Have)
	}
	return a, nil
}

// wireEnd declares end of capture at Total samples and requests the
// final flush.
type wireEnd struct{ Total int64 }

func (a *wireEnd) encode() []byte {
	var e wire.Enc
	e.I64(a.Total)
	return e.B
}

func decodeEnd(p []byte) (*wireEnd, error) {
	d := wire.NewDec(p)
	a := &wireEnd{Total: d.I64()}
	if err := d.Done(); err != nil {
		return nil, err
	}
	if a.Total < 0 {
		return nil, wireErrf("end: negative total %d", a.Total)
	}
	return a, nil
}

// wireDone confirms the flush: Frames frames were published for the
// capture.
type wireDone struct{ Frames uint32 }

func (a *wireDone) encode() []byte {
	var e wire.Enc
	e.U32(a.Frames)
	return e.B
}

func decodeDone(p []byte) (*wireDone, error) {
	d := wire.NewDec(p)
	a := &wireDone{Frames: d.U32()}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return a, nil
}

// wireErrMsg reports a fatal session failure (a typed decode error —
// the one thing reconnecting cannot fix).
type wireErrMsg struct{ Msg string }

func (a *wireErrMsg) encode() []byte {
	var e wire.Enc
	e.Str(a.Msg)
	return e.B
}

func decodeErrMsg(p []byte) (*wireErrMsg, error) {
	d := wire.NewDec(p)
	a := &wireErrMsg{Msg: d.Str()}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return a, nil
}
