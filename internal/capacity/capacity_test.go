package capacity

import (
	"math"
	"testing"
)

// TestPaperEdgeCapacity pins §2.4's arithmetic: 25 Msps, 100 kbps,
// 3-sample edges → 250 samples per bit → 83 stackable edges.
func TestPaperEdgeCapacity(t *testing.T) {
	if got := EdgesPerPeriod(25e6, 100e3, 3); got != 83 {
		t.Fatalf("edge capacity %d, want 83", got)
	}
	if got := MaxTags(25e6, 250e3, 3); got != 33 {
		t.Fatalf("250 kbps capacity %d, want 33 (the Fig. 10 saturation argument)", got)
	}
}

// TestPaperCollisionProbabilities pins §3.3's quoted constants: with
// sixteen 100 kbps tags, "the probability of two-node collisions is
// 0.1890, whereas the probability of three node collisions is only
// 0.0181".
func TestPaperCollisionProbabilities(t *testing.T) {
	period := 25e6 / 100e3
	p2 := CollisionProb(16, period, PaperWindow, 1)
	p3 := CollisionProb(16, period, PaperWindow, 2)
	if math.Abs(p2-0.1890) > 0.002 {
		t.Fatalf("P(two-node) = %.4f, paper says 0.1890", p2)
	}
	if math.Abs(p3-0.0181) > 0.0005 {
		t.Fatalf("P(three-node) = %.4f, paper says 0.0181", p3)
	}
}

// TestLowerRateCollapsesCollisions: at 10 kbps the period grows 10×,
// so even 200 tags see rare ≥3-way collisions (§3.3's scaling point).
func TestLowerRateCollapsesCollisions(t *testing.T) {
	period := 25e6 / 10e3
	p3at200 := CollisionProb(200, period, 3, 2)
	if p3at200 > 0.03 {
		t.Fatalf("P(three-node) at 200 tags / 10 kbps = %.4f, should be small", p3at200)
	}
	// And it is far smaller than the 16-tag / 100 kbps operating point.
	if ref := CollisionProb(16, 250, PaperWindow, 2); p3at200 > ref*2 {
		t.Fatalf("scaling broken: %.4f vs %.4f", p3at200, ref)
	}
}

func TestCollisionProbMonotonicInTags(t *testing.T) {
	prev := 0.0
	for n := 2; n <= 64; n *= 2 {
		p := CollisionProb(n, 250, 3, 1)
		if p <= prev {
			t.Fatalf("collision probability not increasing at n=%d", n)
		}
		prev = p
	}
}

func TestCollisionProbEdgeCases(t *testing.T) {
	if CollisionProb(1, 250, 3, 1) != 0 {
		t.Fatal("single tag cannot collide")
	}
	if CollisionProb(16, 0, 3, 1) != 0 {
		t.Fatal("degenerate period")
	}
	if got := CollisionProb(3, 1, 10, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("window ≥ period must always collide, got %v", got)
	}
	if CollisionProb(16, 250, 3, 16) != 0 {
		t.Fatal("cannot collide with more tags than exist")
	}
}

func TestBinomPMFSumsToOne(t *testing.T) {
	var sum float64
	for i := 0; i <= 20; i++ {
		sum += binomPMF(20, i, 0.3)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("binomial PMF sums to %v", sum)
	}
}

func TestDescribe(t *testing.T) {
	s := Describe(25e6, 16, 100e3, PaperWindow)
	if s.EdgeCapacity != 83 || s.SamplesPerBit != 250 {
		t.Fatalf("summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}
