// Package capacity implements the paper's back-of-the-envelope
// capacity and collision models — the arithmetic behind §2.4's "we can
// stack 250/3 = 83 edges one after the other" and §3.3's collision
// probabilities ("the probability of two-node collisions is 0.1890,
// whereas the probability of three node collisions is only 0.0181").
//
// The model: at reader sample rate fs and tag bit rate r, each bit
// period spans P = fs/r samples; an edge occupies w samples, so at
// most ⌊P/w⌋ edges interleave per period. A tag's edge collides with
// another tag's when their phases land within the collision window;
// with uniformly random comparator phases each of the other n−1 tags
// independently lands there with probability w/P, making the number of
// colliders at one edge Binomial(n−1, w/P).
package capacity

import (
	"fmt"
	"math"
)

// EdgesPerPeriod returns the maximum number of edges that interleave
// in one bit period: ⌊(fs/rate)/edgeWidth⌋ — §2.4's 250/3 = 83 at
// 25 Msps / 100 kbps / 3-sample edges.
func EdgesPerPeriod(fs, rate float64, edgeWidth float64) int {
	if fs <= 0 || rate <= 0 || edgeWidth <= 0 {
		return 0
	}
	return int(fs / rate / edgeWidth)
}

// MaxTags returns the largest number of same-rate tags whose edges
// could be perfectly interleaved (one edge per tag per bit period).
func MaxTags(fs, rate float64, edgeWidth float64) int {
	return EdgesPerPeriod(fs, rate, edgeWidth)
}

// CollisionProb returns the probability that a given tag's edge
// collides with at least k other tags' edges, for n same-rate tags
// with uniformly random phases over a period of P samples and a
// collision window of w samples: P[Binomial(n−1, w/P) ≥ k].
func CollisionProb(n int, period, window float64, k int) float64 {
	if n < 2 || period <= 0 || window <= 0 || k < 1 || k > n-1 {
		return 0
	}
	p := window / period
	if p > 1 {
		p = 1
	}
	// Complement of the first k binomial terms.
	var below float64
	for i := 0; i < k; i++ {
		below += binomPMF(n-1, i, p)
	}
	out := 1 - below
	if out < 0 {
		return 0
	}
	return out
}

// binomPMF evaluates C(n,i)·p^i·(1−p)^(n−i) in log space for
// stability.
func binomPMF(n, i int, p float64) float64 {
	if i < 0 || i > n {
		return 0
	}
	if p <= 0 {
		if i == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if i == n {
			return 1
		}
		return 0
	}
	logC := lgamma(float64(n+1)) - lgamma(float64(i+1)) - lgamma(float64(n-i+1))
	return math.Exp(logC + float64(i)*math.Log(p) + float64(n-i)*math.Log(1-p))
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// PaperWindow is the effective collision window (samples) that
// reproduces the paper's §3.3 numbers at 16 nodes, 100 kbps, 25 Msps:
// P(≥1 other) = 0.1890 and P(≥2 others) = 0.0181 both hold for a
// window just under 3.5 samples — the 3-sample edge plus localization
// slack.
const PaperWindow = 3.47

// Summary describes one operating point of the model.
type Summary struct {
	Tags          int
	BitRate       float64
	SamplesPerBit float64
	EdgeCapacity  int
	ProbTwoWay    float64 // a given edge collides with ≥1 other
	ProbThreeWay  float64 // ≥2 others
}

// Describe evaluates the model at an operating point.
func Describe(fs float64, n int, rate float64, window float64) Summary {
	period := fs / rate
	return Summary{
		Tags:          n,
		BitRate:       rate,
		SamplesPerBit: period,
		EdgeCapacity:  EdgesPerPeriod(fs, rate, 3),
		ProbTwoWay:    CollisionProb(n, period, window, 1),
		ProbThreeWay:  CollisionProb(n, period, window, 2),
	}
}

// String formats the summary.
func (s Summary) String() string {
	return fmt.Sprintf("%d tags @%.0f kbps: %.0f samples/bit, %d-edge capacity, P(2-way)=%.4f, P(3-way)=%.4f",
		s.Tags, s.BitRate/1e3, s.SamplesPerBit, s.EdgeCapacity, s.ProbTwoWay, s.ProbThreeWay)
}
