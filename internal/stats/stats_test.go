package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	// Sample stddev of this classic set is ~2.138.
	if got := Stddev(xs); math.Abs(got-2.1381) > 1e-3 {
		t.Fatalf("stddev = %v", got)
	}
	if Mean(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
}

func TestCI95(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2) // mean .5, sd ~.5
	}
	ci := CI95(xs)
	if ci < 0.08 || ci > 0.12 {
		t.Fatalf("CI95 = %v, want ~0.098", ci)
	}
	if CI95([]float64{1}) != 0 {
		t.Fatal("single sample CI should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Fatalf("median = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// Input not mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated input")
	}
}

func TestBER(t *testing.T) {
	var b BER
	if b.Rate() != 0 {
		t.Fatal("empty BER should be 0")
	}
	b.Add(3, 100)
	b.Add(0, 100)
	if b.Rate() != 0.015 {
		t.Fatalf("rate = %v", b.Rate())
	}
}

func TestSeriesAdd(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.Add(3, 4)
	if len(s.Points) != 2 || s.Points[1] != (Point{3, 4}) {
		t.Fatalf("points = %+v", s.Points)
	}
}

func TestTableString(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "long-header"}}
	tb.AddRow("xx", "1")
	tb.AddRow("y", "22")
	out := tb.String()
	if !strings.Contains(out, "== T ==") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	// Columns align: the second column starts at the same offset in
	// every row.
	idx := strings.Index(lines[1], "long-header")
	for _, l := range lines[2:] {
		if len(l) <= idx {
			t.Fatalf("row %q shorter than header offset", l)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("x,y", `say "hi"`)
	got := tb.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestFromSeries(t *testing.T) {
	s1 := Series{Label: "A", Points: []Point{{1, 10}, {2, 20}}}
	s2 := Series{Label: "B", Points: []Point{{1, 30}}}
	tb := FromSeries("t", "x", []Series{s1, s2}, "%.0f")
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][1] != "10" || tb.Rows[0][2] != "30" {
		t.Fatalf("row 0 = %v", tb.Rows[0])
	}
	if tb.Rows[1][2] != "-" {
		t.Fatalf("missing point should render '-', got %v", tb.Rows[1])
	}
}
