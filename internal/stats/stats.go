// Package stats provides the summary statistics and result containers
// the experiment harness reports with: means, deviations, confidence
// intervals, BER accumulators, and printable tables/series shaped like
// the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 for n < 2).
func Stddev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval on the mean of xs.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return 1.96 * Stddev(xs) / math.Sqrt(float64(n))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation; xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	pos := q * float64(len(cp)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(cp) {
		return cp[lo]
	}
	return cp[lo]*(1-frac) + cp[lo+1]*frac
}

// BER accumulates bit-error counts.
type BER struct {
	Errors, Bits int
}

// Add accumulates errors out of bits.
func (b *BER) Add(errors, bits int) {
	b.Errors += errors
	b.Bits += bits
}

// Rate returns the error rate (0 when no bits were counted).
func (b *BER) Rate() float64 {
	if b.Bits == 0 {
		return 0
	}
	return float64(b.Errors) / float64(b.Bits)
}

// Point is one (x, y) sample of a figure series.
type Point struct {
	X, Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{x, y})
}

// Table is a printable experiment result shaped like a paper table or
// the data behind a figure.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CSV renders the table as comma-separated values (header first).
// Cells are quoted only when they contain commas or quotes.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// FromSeries builds a table with one X column and one Y column per
// series, joining on X values in first-series order.
func FromSeries(title, xLabel string, series []Series, format string) *Table {
	t := &Table{Title: title, Header: []string{xLabel}}
	for _, s := range series {
		t.Header = append(t.Header, s.Label)
	}
	if len(series) == 0 {
		return t
	}
	for i, p := range series[0].Points {
		row := []string{fmt.Sprintf("%g", p.X)}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf(format, s.Points[i].Y))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}
