// Package hardware models tag hardware complexity and power. It stands
// in for the paper's Verilog/FPGA implementation and SPICE simulations
// (§5.3): transistor counts are derived from gate-level component
// inventories per protocol, and power from a component-level model
// (oscillator, receive front end, dynamic logic switching, SRAM
// retention, leakage) calibrated to the operating points the paper's
// platform section reports (8 MHz NX3225GD crystal, PCF8523-class RTC,
// Gen 2 command decoding).
package hardware

import "fmt"

// Transistor costs of standard cells (static CMOS).
const (
	TransistorsDFF     = 24 // D flip-flop
	TransistorsNAND2   = 4
	TransistorsNOR2    = 4
	TransistorsINV     = 2
	TransistorsXOR2    = 8
	TransistorsMUX2    = 12
	TransistorsSRAMBit = 6
	// FIFOBitOverhead adds per-bit addressing/precharge overhead on
	// top of the 6T cell, giving 12 transistors per FIFO bit.
	FIFOBitOverhead = 6
)

// Netlist is a gate-level component inventory.
type Netlist struct {
	Name  string
	DFF   int
	NAND2 int
	NOR2  int
	INV   int
	XOR2  int
	MUX2  int
}

// Transistors returns the total transistor count of the netlist.
func (n Netlist) Transistors() int {
	return n.DFF*TransistorsDFF + n.NAND2*TransistorsNAND2 + n.NOR2*TransistorsNOR2 +
		n.INV*TransistorsINV + n.XOR2*TransistorsXOR2 + n.MUX2*TransistorsMUX2
}

// FIFOTransistors returns the transistor cost of a FIFO of the given
// bit capacity: a 6T SRAM cell plus addressing overhead per bit.
func FIFOTransistors(bits int) int {
	return bits * (TransistorsSRAMBit + FIFOBitOverhead)
}

// LFTagNetlist is the complete LF-Backscatter tag digital section: a
// tiny shift-and-toggle state machine that clocks sensor bits straight
// into the RF transistor. No decoder, no MAC, no CRC, no buffer.
func LFTagNetlist() Netlist {
	return Netlist{
		Name:  "LF-Backscatter",
		DFF:   4, // toggle state + 3-bit preamble/sequence counter
		NAND2: 8, // counter and toggle gating
		XOR2:  4, // toggle-on-1 modulation
		INV:   8, // clock and output buffering
	}
}

// BuzzTagNetlist is the Buzz tag logic (excluding FIFO): the PN
// participation sequence generator, the lock-step round counter, and
// the retransmission combiner.
func BuzzTagNetlist() Netlist {
	return Netlist{
		Name:  "Buzz",
		DFF:   48, // 17-bit PN LFSR + round counter + sync registers
		NAND2: 80,
		XOR2:  20, // LFSR feedback and data gating
		INV:   80,
	}
}

// Gen2TagNetlist is the EPC Gen 2 RFID chip digital section (excluding
// FIFO), sized after the publicly available Verilog implementation the
// paper compares against [Yeager et al., JSSC 2010]: command decoder,
// protocol state machine, CRC-16, slot counter and PRNG.
func Gen2TagNetlist() Netlist {
	return Netlist{
		Name:  "EPC Gen 2 RFID chip",
		DFF:   600, // command/state registers, RN16 PRNG, CRC, slot counter
		NAND2: 1200,
		XOR2:  200,
		INV:   952,
	}
}

// Complexity is the Table 3 row for one protocol.
type Complexity struct {
	Name                string
	Transistors         int // without FIFO
	TransistorsWithFIFO int
}

// Table3 computes the hardware-complexity comparison with the given
// FIFO capacity in bits (the paper uses 1 kbit). LF-Backscatter needs
// no FIFO — tags transmit samples as they are taken — so its two
// columns are identical.
func Table3(fifoBits int) []Complexity {
	fifo := FIFOTransistors(fifoBits)
	gen2 := Gen2TagNetlist().Transistors()
	buzz := BuzzTagNetlist().Transistors()
	lf := LFTagNetlist().Transistors()
	return []Complexity{
		{Name: "RFID chip", Transistors: gen2, TransistorsWithFIFO: gen2 + fifo},
		{Name: "Buzz", Transistors: buzz, TransistorsWithFIFO: buzz + fifo},
		{Name: "LF-Backscatter", Transistors: lf, TransistorsWithFIFO: lf},
	}
}

// Power-model calibration constants (watts unless noted). See
// EXPERIMENTS.md for the derivation from the paper's cited parts.
const (
	// PowerRTC is a 32.768 kHz RTC-class oscillator (NXP PCF8523).
	PowerRTC = 1.2e-6
	// PowerCrystal8MHz is the 8 MHz crystal oscillator the paper's
	// Moo modification uses for ≥32 kbps operation.
	PowerCrystal8MHz = 32e-6
	// PowerRxGen2 is the continuous envelope-detection and command
	// decoding front end a Gen 2 tag runs.
	PowerRxGen2 = 110e-6
	// PowerRxBuzz is the lock-step synchronization receiver Buzz needs.
	PowerRxBuzz = 45e-6
	// PowerRxLF is LF-Backscatter's carrier-detect comparator.
	PowerRxLF = 0.2e-6
	// EnergyPerSwitch is the dynamic switching energy per transistor
	// transition (effective C·V² at backscatter-tag geometries).
	EnergyPerSwitch = 1.5e-15
	// LeakagePerTransistor is static leakage per transistor.
	LeakagePerTransistor = 50e-12
	// PowerSRAMRetentionPerKb is FIFO retention power per kilobit.
	PowerSRAMRetentionPerKb = 0.5e-6
	// Activity is the average switching activity factor of clocked
	// logic.
	Activity = 0.15
)

// OscillatorPower returns the clock source power for a required logic
// clock frequency: an RTC-class crystal suffices up to 32.768 kHz;
// faster operation takes the 8 MHz crystal (sub-linear scaling with
// the division ratio).
func OscillatorPower(clockHz float64) float64 {
	if clockHz <= 32768 {
		return PowerRTC
	}
	return PowerCrystal8MHz
}

// Profile describes one protocol's tag for power evaluation.
type Profile struct {
	Name string
	// Transistors clocked by the logic clock.
	Transistors int
	// FIFOBits of buffer the protocol requires.
	FIFOBits int
	// RxPower of the receive path, watts.
	RxPower float64
	// ClockHz of the logic clock at the given bit rate.
	ClockHz float64
	// TxSwitchesPerBit: antenna/logic transitions per transmitted bit
	// (Buzz retransmits each bit in several measurements).
	TxSwitchesPerBit float64
}

// LFProfile returns the LF tag profile at a bit rate. LF clocks logic
// at the bit rate itself — bits go out as they are sampled.
func LFProfile(bitRate float64) Profile {
	return Profile{
		Name:             "LF-Backscatter",
		Transistors:      LFTagNetlist().Transistors(),
		RxPower:          PowerRxLF,
		ClockHz:          bitRate,
		TxSwitchesPerBit: 1,
	}
}

// BuzzProfile returns the Buzz tag profile: lock-step at the symbol
// rate with measurementsPerBit retransmissions and a 1 kbit FIFO.
func BuzzProfile(bitRate float64, measurementsPerBit float64) Profile {
	return Profile{
		Name:             "Buzz",
		Transistors:      BuzzTagNetlist().Transistors(),
		FIFOBits:         1024,
		RxPower:          PowerRxBuzz,
		ClockHz:          bitRate,
		TxSwitchesPerBit: measurementsPerBit,
	}
}

// Gen2Profile returns the EPC Gen 2 tag profile: 1.92 MHz protocol
// clock, continuous command decoding, 1 kbit FIFO.
func Gen2Profile() Profile {
	return Profile{
		Name:             "EPC Gen 2",
		Transistors:      Gen2TagNetlist().Transistors(),
		FIFOBits:         1024,
		RxPower:          PowerRxGen2,
		ClockHz:          1.92e6,
		TxSwitchesPerBit: 1,
	}
}

// Power returns the tag's average power draw in watts.
func (p Profile) Power() float64 {
	dynamic := float64(p.Transistors) * p.ClockHz * Activity * EnergyPerSwitch * p.TxSwitchesPerBit
	leak := float64(p.Transistors+FIFOTransistors(p.FIFOBits)) * LeakagePerTransistor
	retention := float64(p.FIFOBits) / 1024 * PowerSRAMRetentionPerKb
	return OscillatorPower(p.ClockHz) + p.RxPower + dynamic + leak + retention
}

// BitsPerMicrojoule returns the protocol's communication efficiency
// given the per-tag goodput in bits/s: delivered bits per µJ of tag
// energy (the Fig. 13 metric).
func (p Profile) BitsPerMicrojoule(perTagGoodputBps float64) float64 {
	w := p.Power()
	if w <= 0 {
		return 0
	}
	return perTagGoodputBps / (w * 1e6)
}

// String formats a complexity row.
func (c Complexity) String() string {
	return fmt.Sprintf("%-20s %8d %8d", c.Name, c.Transistors, c.TransistorsWithFIFO)
}
