package hardware

import "testing"

// TestTable3MatchesPaper pins the transistor counts to the numbers the
// paper reports: the netlists were sized from the cited designs, and a
// change here means the hardware model drifted.
func TestTable3MatchesPaper(t *testing.T) {
	rows := Table3(1024)
	want := []struct {
		name      string
		bare, fif int
	}{
		{"RFID chip", 22704, 34992},
		{"Buzz", 1792, 14080},
		{"LF-Backscatter", 176, 176},
	}
	if len(rows) != len(want) {
		t.Fatalf("%d rows", len(rows))
	}
	for i, w := range want {
		if rows[i].Name != w.name || rows[i].Transistors != w.bare || rows[i].TransistorsWithFIFO != w.fif {
			t.Fatalf("row %d = %+v, want %+v", i, rows[i], w)
		}
	}
}

func TestFIFOTransistors(t *testing.T) {
	if got := FIFOTransistors(1024); got != 12288 {
		t.Fatalf("1 kbit FIFO = %d transistors", got)
	}
	if FIFOTransistors(0) != 0 {
		t.Fatal("empty FIFO should cost nothing")
	}
}

func TestNetlistTransistorArithmetic(t *testing.T) {
	n := Netlist{DFF: 2, NAND2: 3, XOR2: 1, INV: 4}
	want := 2*TransistorsDFF + 3*TransistorsNAND2 + TransistorsXOR2 + 4*TransistorsINV
	if n.Transistors() != want {
		t.Fatalf("Transistors() = %d, want %d", n.Transistors(), want)
	}
}

func TestOscillatorPowerThreshold(t *testing.T) {
	if OscillatorPower(32768) != PowerRTC {
		t.Fatal("32.768 kHz should use the RTC")
	}
	if OscillatorPower(100e3) != PowerCrystal8MHz {
		t.Fatal("100 kHz needs the fast crystal")
	}
}

func TestPowerOrdering(t *testing.T) {
	lf := LFProfile(100e3).Power()
	buzz := BuzzProfile(100e3, 7).Power()
	gen2 := Gen2Profile().Power()
	if !(lf < buzz && buzz < gen2) {
		t.Fatalf("power ordering broken: LF %.2eW, Buzz %.2eW, Gen2 %.2eW", lf, buzz, gen2)
	}
	// The LF streaming tag must sit in the paper's "tens of µW" regime.
	if lf < 5e-6 || lf > 100e-6 {
		t.Fatalf("LF streaming power %.2e W outside tens-of-µW regime", lf)
	}
}

func TestLowRateLFTagIsMicrowatts(t *testing.T) {
	// A 1 kbps sensor-class tag runs from the RTC: a few µW all in —
	// the battery-less temperature sensor of §1.
	p := LFProfile(1e3).Power()
	if p > 3e-6 {
		t.Fatalf("sensor-class LF tag draws %.2e W, want ≤ ~2µW", p)
	}
}

func TestBitsPerMicrojoule(t *testing.T) {
	p := LFProfile(100e3)
	eff := p.BitsPerMicrojoule(100e3)
	if eff <= 0 {
		t.Fatal("efficiency must be positive")
	}
	// Efficiency is linear in goodput.
	if e2 := p.BitsPerMicrojoule(50e3); e2 >= eff {
		t.Fatal("halving goodput should halve efficiency")
	}
}

func TestEfficiencyOrderingAtSixteenNodes(t *testing.T) {
	// Per-tag goodputs at n=16 (nominal operating points).
	lf := LFProfile(100e3).BitsPerMicrojoule(90e3)
	buzz := BuzzProfile(100e3, 7).BitsPerMicrojoule(13e3)
	gen2 := Gen2Profile().BitsPerMicrojoule(6e3)
	if !(lf > buzz && buzz > gen2) {
		t.Fatalf("efficiency ordering broken: LF %.0f, Buzz %.0f, Gen2 %.0f bits/µJ", lf, buzz, gen2)
	}
	if lf/buzz < 5 {
		t.Fatalf("LF/Buzz efficiency ratio %.1f, expected a large gap", lf/buzz)
	}
	if lf/gen2 < 20 {
		t.Fatalf("LF/Gen2 efficiency ratio %.1f, expected a very large gap", lf/gen2)
	}
}

func TestComplexityString(t *testing.T) {
	c := Complexity{Name: "X", Transistors: 1, TransistorsWithFIFO: 2}
	if c.String() == "" {
		t.Fatal("empty complexity string")
	}
}
