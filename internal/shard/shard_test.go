package shard

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestNextTilesExactly(t *testing.T) {
	// Ownership ranges must tile [0, avail) exactly once, in order,
	// regardless of how avail advances between calls.
	const size, min = 100, 25
	covered := int64(0)
	avail := int64(0)
	var got []Range
	for _, push := range []int64{10, 10, 10, 120, 5, 300, 1} {
		avail += push
		for {
			r, ok := Next(covered, avail, size, min, false)
			if !ok {
				break
			}
			got = append(got, r)
			covered = r.Hi
		}
	}
	// EOF flushes the remainder even below min.
	for {
		r, ok := Next(covered, avail, size, min, true)
		if !ok {
			break
		}
		got = append(got, r)
		covered = r.Hi
	}
	if covered != avail {
		t.Fatalf("covered %d != avail %d", covered, avail)
	}
	prev := int64(0)
	for _, r := range got {
		if r.Lo != prev {
			t.Fatalf("gap or overlap: range starts at %d, want %d", r.Lo, prev)
		}
		if r.Len() <= 0 || r.Len() > size {
			t.Fatalf("range %+v has bad length", r)
		}
		prev = r.Hi
	}
	// Pre-EOF, no range shorter than min is ever dispatched.
	for _, r := range got[:len(got)-1] {
		if r.Len() < min && r.Hi != avail {
			t.Fatalf("pre-EOF range %+v shorter than min %d", r, min)
		}
	}
}

func TestNextHoldsBackSmallPreEOF(t *testing.T) {
	if _, ok := Next(0, 10, 100, 25, false); ok {
		t.Fatal("dispatched a sub-min shard before EOF")
	}
	if r, ok := Next(0, 10, 100, 25, true); !ok || r != (Range{0, 10}) {
		t.Fatalf("EOF remainder not flushed: %+v %v", r, ok)
	}
	if _, ok := Next(10, 10, 100, 25, true); ok {
		t.Fatal("dispatched an empty shard")
	}
}

func TestSweepReach(t *testing.T) {
	// Gap=2, Win=3 (the default detector): margin 5, guard 4.
	if got := SweepReach(2, 3); got != 9 {
		t.Fatalf("SweepReach(2,3) = %d, want 9", got)
	}
}

func TestPoolRunsAllJobs(t *testing.T) {
	p := NewPool(4, 8)
	defer p.Close()
	var sum atomic.Int64
	tickets := make([]*Ticket, 100)
	for i := range tickets {
		n := int64(i)
		tickets[i] = p.Go(func() { sum.Add(n) })
	}
	for _, tk := range tickets {
		tk.Wait()
		if err := tk.Err(); err != nil {
			t.Fatalf("unexpected job error: %v", err)
		}
	}
	if got := sum.Load(); got != 99*100/2 {
		t.Fatalf("sum = %d, want %d", got, 99*100/2)
	}
}

func TestPoolStragglerDoesNotStall(t *testing.T) {
	// A slow head job must not prevent later jobs from completing:
	// idle workers pull past it.
	p := NewPool(2, 4)
	defer p.Close()
	release := make(chan struct{})
	head := p.Go(func() { <-release })
	tail := p.Go(func() {})
	deadline := time.After(5 * time.Second)
	for !tail.Ready() {
		select {
		case <-deadline:
			t.Fatal("tail job stalled behind straggler head")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if head.Ready() {
		t.Fatal("head finished before release")
	}
	close(release)
	head.Wait()
}

func TestPoolCapturesPanic(t *testing.T) {
	p := NewPool(1, 2)
	defer p.Close()
	bad := p.Go(func() { panic("poisoned shard") })
	bad.Wait()
	if err := bad.Err(); err == nil {
		t.Fatal("panic not captured")
	}
	// The worker survives the panic and keeps pulling.
	ok := p.Go(func() {})
	ok.Wait()
	if err := ok.Err(); err != nil {
		t.Fatalf("worker did not survive panic: %v", err)
	}
}

func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(2, 4)
	var done atomic.Int64
	for i := 0; i < 10; i++ {
		p.Go(func() { done.Add(1) })
	}
	p.Close()
	if got := done.Load(); got != 10 {
		t.Fatalf("Close returned with %d/10 jobs done", got)
	}
}
