package shard

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPoolGoAfterClose is the regression test for the coordinator
// cancel-mid-merge path: Go after Close must return a pre-failed
// ticket, not panic with a raw send on a closed channel.
func TestPoolGoAfterClose(t *testing.T) {
	p := NewPool(2, 4)
	p.Close()
	t1 := p.Go(func() { t.Error("job submitted after Close must not run") })
	if !t1.Ready() {
		t.Fatal("post-Close ticket not immediately ready")
	}
	t1.Wait() // must not block
	if !errors.Is(t1.Err(), ErrPoolClosed) {
		t.Fatalf("post-Close ticket err = %v, want ErrPoolClosed", t1.Err())
	}
}

// TestPoolCloseIdempotent: a second Close must return instead of
// closing an already-closed channel.
func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(1, 1)
	p.Go(func() {}).Wait()
	p.Close()
	p.Close()
}

// TestPoolGoCloseRace hammers concurrent Go and Close under -race:
// every Go must either run its job or fail with ErrPoolClosed; no
// send-on-closed-channel panics, no lost tickets.
func TestPoolGoCloseRace(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		p := NewPool(2, 4)
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					tk := p.Go(func() {})
					tk.Wait()
					if err := tk.Err(); err != nil && !errors.Is(err, ErrPoolClosed) {
						t.Errorf("unexpected ticket error: %v", err)
					}
				}
			}()
		}
		p.Close()
		wg.Wait()
	}
}

// TestPoolPanicPreservesTypedError: an error-valued panic must survive
// the ticket as a wrapped error so errors.As still finds the type —
// the dist coordinator's quarantine path depends on this.
func TestPoolPanicPreservesTypedError(t *testing.T) {
	type poisonErr struct{ error }
	p := NewPool(1, 1)
	defer p.Close()
	want := poisonErr{errors.New("poisoned shard")}
	tk := p.Go(func() { panic(error(want)) })
	tk.Wait()
	var got poisonErr
	if !errors.As(tk.Err(), &got) {
		t.Fatalf("typed error lost through panic capture: %v", tk.Err())
	}
	if got != want {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestTicketWaitCtx covers the three WaitCtx outcomes: completed
// ticket, cancelled wait on a stuck ticket, and the fast path when the
// ticket is already ready under an expired context.
func TestTicketWaitCtx(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()

	tk := p.Go(func() {})
	if err := tk.WaitCtx(context.Background()); err != nil {
		t.Fatalf("WaitCtx on completed job: %v", err)
	}

	release := make(chan struct{})
	stuck := p.Go(func() { <-release })
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := stuck.WaitCtx(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitCtx on stuck job = %v, want deadline exceeded", err)
	}
	close(release)
	stuck.Wait()

	// Fast path: ready ticket wins even against a done context.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := tk.WaitCtx(done); err != nil {
		t.Fatalf("WaitCtx fast path on ready ticket: %v", err)
	}
}

// TestTicketWaitCtxCancelWhileQueued races cancellation against a job
// still waiting in the queue behind a blocker (run under -race): the
// waiter must return promptly with the context error while the job
// later runs to completion unharmed.
func TestTicketWaitCtxCancelWhileQueued(t *testing.T) {
	p := NewPool(1, 1)
	defer p.Close()
	release := make(chan struct{})
	blocker := p.Go(func() { <-release })

	ran := make(chan struct{})
	queued := p.Go(func() { close(ran) })

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- queued.WaitCtx(ctx) }()
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("WaitCtx = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitCtx did not observe cancellation")
	}

	close(release)
	blocker.Wait()
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("queued job never ran after abandoned wait")
	}
	queued.Wait()
	if err := queued.Err(); err != nil {
		t.Fatalf("queued job err = %v", err)
	}
}
