package shard

import (
	"context"
	"fmt"
	"sync"
)

// Pool is a bounded pull-based worker pool: a fixed set of workers
// range over a shared job queue, so an idle worker always pulls the
// next pending shard — stragglers never stall completed neighbours,
// and no coordinator thread assigns work (the celestia pull-based
// distribution shape, brought in-process). Submission order is
// preserved by the queue, but completion order is not; callers that
// need in-order merge hold the Tickets in submission order and adopt
// the head as it completes.
type Pool struct {
	jobs    chan func()
	wg      sync.WaitGroup
	workers int

	// mu guards closed against Go/Close races: Close flips closed
	// under the write lock before closing the channel, and Go holds
	// the read lock across the send, so a send can never hit a closed
	// channel — a late Go observes closed and returns a pre-failed
	// ticket instead (a coordinator cancelling mid-merge hits this).
	mu     sync.RWMutex
	closed bool
}

// ErrPoolClosed is the failure a Ticket carries when its job was
// submitted after Close.
var ErrPoolClosed = fmt.Errorf("shard: pool closed")

// NewPool starts workers goroutines pulling from a queue of depth
// backlog. Submissions beyond the backlog block until a worker frees a
// slot, which is the memory bound: at most backlog+workers jobs exist
// at once.
func NewPool(workers, backlog int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if backlog < workers {
		backlog = workers
	}
	p := &Pool{jobs: make(chan func(), backlog), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.jobs {
				fn()
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Go submits a job and returns its completion ticket. A panic inside
// the job is captured into the ticket (the worker survives), so a
// poisoned shard degrades to an error at adoption instead of killing
// the pool; a panic whose value is an error is wrapped so typed errors
// (e.g. decoder.DecodeError) survive errors.As through the ticket.
// After Close the ticket comes back already failed with ErrPoolClosed
// rather than panicking on a closed channel.
func (p *Pool) Go(fn func()) *Ticket {
	t := &Ticket{ch: make(chan struct{})}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		t.err = ErrPoolClosed
		close(t.ch)
		return t
	}
	p.jobs <- func() {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok {
					t.err = fmt.Errorf("shard: job panic: %w", err)
				} else {
					t.err = fmt.Errorf("shard: job panic: %v", r)
				}
			}
			close(t.ch)
		}()
		fn()
	}
	p.mu.RUnlock()
	return t
}

// Close retires the pool: subsequent Go calls return pre-failed
// tickets, and Close returns once every previously submitted job has
// finished and every worker has exited. Idempotent — a second Close
// returns immediately.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}

// Ticket is a one-shot completion latch for a submitted job.
type Ticket struct {
	ch  chan struct{}
	err error
}

// Ready reports whether the job has finished, without blocking.
func (t *Ticket) Ready() bool {
	select {
	case <-t.ch:
		return true
	default:
		return false
	}
}

// Wait blocks until the job has finished.
func (t *Ticket) Wait() { <-t.ch }

// WaitCtx blocks until the job has finished or ctx is done, returning
// ctx.Err() in the latter case. On a nil return the ticket is ready
// and Err is valid. The job itself keeps running either way — a
// cancelled wait abandons the result, it does not revoke the work —
// which is exactly what a lease deadline or coordinator shutdown
// needs: stop waiting on a stuck ticket without corrupting the pool.
func (t *Ticket) WaitCtx(ctx context.Context) error {
	select {
	case <-t.ch:
		return nil
	default:
	}
	select {
	case <-t.ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Err returns the job's captured panic, if any. Valid only after
// Ready has returned true or Wait has returned.
func (t *Ticket) Err() error { return t.err }
