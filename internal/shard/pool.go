package shard

import (
	"fmt"
	"sync"
)

// Pool is a bounded pull-based worker pool: a fixed set of workers
// range over a shared job queue, so an idle worker always pulls the
// next pending shard — stragglers never stall completed neighbours,
// and no coordinator thread assigns work (the celestia pull-based
// distribution shape, brought in-process). Submission order is
// preserved by the queue, but completion order is not; callers that
// need in-order merge hold the Tickets in submission order and adopt
// the head as it completes.
type Pool struct {
	jobs    chan func()
	wg      sync.WaitGroup
	workers int
}

// NewPool starts workers goroutines pulling from a queue of depth
// backlog. Submissions beyond the backlog block until a worker frees a
// slot, which is the memory bound: at most backlog+workers jobs exist
// at once.
func NewPool(workers, backlog int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if backlog < workers {
		backlog = workers
	}
	p := &Pool{jobs: make(chan func(), backlog), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.jobs {
				fn()
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Go submits a job and returns its completion ticket. A panic inside
// the job is captured into the ticket (the worker survives), so a
// poisoned shard degrades to an error at adoption instead of killing
// the pool.
func (p *Pool) Go(fn func()) *Ticket {
	t := &Ticket{ch: make(chan struct{})}
	p.jobs <- func() {
		defer func() {
			if r := recover(); r != nil {
				t.err = fmt.Errorf("shard: job panic: %v", r)
			}
			close(t.ch)
		}()
		fn()
	}
	return t
}

// Close retires the pool: no further Go calls are allowed, and Close
// returns once every submitted job has finished and every worker has
// exited.
func (p *Pool) Close() {
	close(p.jobs)
	p.wg.Wait()
}

// Ticket is a one-shot completion latch for a submitted job.
type Ticket struct {
	ch  chan struct{}
	err error
}

// Ready reports whether the job has finished, without blocking.
func (t *Ticket) Ready() bool {
	select {
	case <-t.ch:
		return true
	default:
		return false
	}
}

// Wait blocks until the job has finished.
func (t *Ticket) Wait() { <-t.ch }

// Err returns the job's captured panic, if any. Valid only after
// Ready has returned true or Wait has returned.
func (t *Ticket) Err() error { return t.err }
