// Package shard implements seam-safe data-parallel sharding of the
// streaming decode pipeline: a capture (or pushed stream) is split into
// overlapping sample shards that independent workers process
// concurrently, and the per-shard results are merged deterministically
// so the output is byte-identical to the single-shard decode at any
// shard count.
//
// The correctness argument rests on the pipeline's provably-final cut
// distances. Every decode stage reads a bounded sample neighbourhood:
//
//   - The differential sweep at position p reads prefix sums over
//     p ± (Gap+Win), and the sparse skip tier additionally consults a
//     Gap+2 guard context around each threshold decision (DESIGN.md
//     §12). SweepReach bounds both.
//   - Stream registration reads no edge past
//     streams.RegistrationHorizon, and the frame walk past a stream's
//     registration reads no edge beyond streams.WalkHorizon.
//
// A shard that overlaps its neighbours by at least the relevant reach
// therefore computes exactly the values the serial pipeline would, and
// the overlap rows are deduplicated by keeping each position's value
// from the shard that owns it (half-open ownership ranges tile the
// capture exactly once). Because every retained value is bit-identical
// to the serial one, the merge order cannot matter — determinism is by
// construction, not by synchronization.
//
// The worker loop is pull-based: idle workers pull the next shard from
// a shared queue, so a straggler shard never stalls completed
// neighbours; the owner adopts finished shards in submission order
// (see Pool and Ticket).
package shard

// Range is a half-open range [Lo, Hi) of absolute sample positions —
// one shard's ownership span. Ownership ranges tile the processed
// interval exactly once; a shard's computation may read beyond its
// range (the overlap) but only its owned positions enter the merged
// output, which is the dedup rule that makes the merge deterministic.
type Range struct{ Lo, Hi int64 }

// Len returns the number of positions the range owns.
func (r Range) Len() int64 { return r.Hi - r.Lo }

// SweepMargin is the half-width of the differential window at one
// magnitude position: the sweep at p averages samples over
// [p-gap-win, p+gap+win], so prefix sums must cover that span.
func SweepMargin(gap, win int64) int64 { return gap + win }

// SweepGuard is the context the sparse sweep's skip tier consults
// around each threshold decision (DESIGN.md §12): a position within
// gap+2 samples of a threshold crossing is always computed exactly.
func SweepGuard(gap int64) int64 { return gap + 2 }

// SweepReach is the farthest sample distance a shard's sweep kernel
// can read outside its owned range: the differential window margin
// plus the skip tier's guard context. Adjacent sweep shards must
// overlap by at least this much for each to compute its owned
// positions exactly as the serial sweep would.
func SweepReach(gap, win int64) int64 { return SweepMargin(gap, win) + SweepGuard(gap) }

// Next plans the next shard to dispatch: positions below covered are
// already owned by earlier shards, positions below avail are
// computable now. Pre-EOF a shard is only dispatched once at least min
// positions are available — tiny pushes would otherwise degenerate
// into per-push jobs whose dispatch cost dwarfs the work — while at
// EOF the remainder is flushed regardless of size so the stream
// drains. The second return is false when nothing should be
// dispatched yet.
func Next(covered, avail, size, min int64, eof bool) (Range, bool) {
	n := avail - covered
	if n <= 0 || (!eof && n < min) {
		return Range{}, false
	}
	if n > size {
		n = size
	}
	return Range{covered, covered + n}, true
}
