// Package reliable implements the link-layer reliability sketch of
// §3.6 on top of the laissez-faire protocol. The tags stay as simple
// as ever — they just retransmit their (CRC-16-protected) message
// every epoch with a fresh random offset — while the reader drives two
// broadcast decisions:
//
//   - a Broadcast NACK: as long as any tag's message has not been
//     received with a valid CRC, the reader restarts the carrier and
//     everyone retransmits (collision patterns re-randomize each epoch,
//     so a tag lost to a phase collision usually comes through the next
//     one);
//   - a rate-reduction command: when an epoch shows heavy collision
//     activity, the reader halves the maximum bit rate in the network
//     to thin the edge density (stringently constrained slow tags may
//     ignore this — their transmissions rarely collide anyway).
//
// The receiver deduplicates by tag identity (each message carries the
// tag index in its first byte), so the reader needs no per-tag state
// machine — exactly the asymmetry the paper is after.
package reliable

import (
	"fmt"

	"lf"
	"lf/internal/epc"
	"lf/internal/rng"
)

// Config tunes the reliability session.
type Config struct {
	// MaxEpochs bounds the retransmission loop.
	MaxEpochs int
	// CollisionRateThreshold triggers the slow-down broadcast: the
	// fraction of decoded slots that needed collision separation.
	CollisionRateThreshold float64
	// MinRate is the floor for rate reduction (bits/s).
	MinRate float64
	// MinConfidence gates frame acceptance on the decoder's confidence
	// score in addition to the CRC. A 16-bit CRC passes random garbage
	// once in 65k frames; on a degraded channel (fault injection, deep
	// collisions) the decoder can emit many near-random candidate
	// frames per epoch, so CRC alone is no longer a negligible risk.
	// Frames below the threshold are ignored and simply retransmit.
	MinConfidence float64
	// Seed drives payload generation.
	Seed int64
}

// DefaultConfig returns a session policy matched to the default
// network.
func DefaultConfig() Config {
	return Config{
		MaxEpochs:              12,
		CollisionRateThreshold: 0.25,
		MinRate:                25e3,
		MinConfidence:          0.05,
		Seed:                   1,
	}
}

// Message is one tag's application payload for the session.
type Message struct {
	// TagID is the transmitting tag's index.
	TagID int
	// Data is the application bits.
	Data []byte
}

// frame lays out a message for transmission: 8-bit tag id, data,
// CRC-16 over both. The CRC is computed by the harness — a real
// deployment would burn it into the sensor's message ROM or accept
// the tag-side XOR tree it costs; either way the tag transmits a
// fixed, precomputed bit string, keeping its logic at Table 3 size.
func frame(m Message) []byte {
	bits := make([]byte, 0, 8+len(m.Data)+16)
	for b := 7; b >= 0; b-- {
		bits = append(bits, byte(m.TagID>>uint(b))&1)
	}
	bits = append(bits, m.Data...)
	return append(bits, epc.CRC16Bits(bits)...)
}

// parseFrame validates and splits a received frame.
func parseFrame(bits []byte) (tagID int, data []byte, ok bool) {
	if len(bits) <= 24 || !epc.CheckCRC16(bits) {
		return 0, nil, false
	}
	id := 0
	for i := 0; i < 8; i++ {
		id = id<<1 | int(bits[i])
	}
	return id, bits[8 : len(bits)-16], true
}

// EpochStats records one epoch of the session.
type EpochStats struct {
	// Seconds is the epoch airtime.
	Seconds float64
	// Delivered is the number of distinct tags received so far.
	Delivered int
	// CollisionRate is the fraction of decoded slots that went through
	// collision separation.
	CollisionRate float64
	// MaxRate is the network's maximum bit rate during this epoch
	// (reflecting any slow-down broadcasts).
	MaxRate float64
	// MeanConfidence averages the decoder's confidence over the
	// epoch's streams — a link-quality signal the reader can watch to
	// notice degradation before frames start failing outright.
	MeanConfidence float64
	// LowConfidence counts frames rejected by the MinConfidence gate
	// despite a passing CRC.
	LowConfidence int
}

// Result summarizes a session.
type Result struct {
	// Delivered maps tag id → recovered data bits.
	Delivered map[int][]byte
	// Epochs holds per-epoch statistics.
	Epochs []EpochStats
	// Seconds is the total airtime spent.
	Seconds float64
	// Complete reports whether every message was delivered.
	Complete bool
	// RateReductions counts slow-down broadcasts issued.
	RateReductions int
}

// Collect runs the reliability session: every tag retransmits its
// framed message each epoch until the reader has them all (or
// MaxEpochs pass).
func Collect(net *lf.Network, msgs []Message, cfg Config) (*Result, error) {
	if cfg.MaxEpochs < 1 {
		return nil, fmt.Errorf("reliable: MaxEpochs %d", cfg.MaxEpochs)
	}
	if len(msgs) != len(net.Tags()) {
		return nil, fmt.Errorf("reliable: %d messages for %d tags", len(msgs), len(net.Tags()))
	}
	src := rng.New(cfg.Seed)
	_ = src
	want := make(map[int][]byte, len(msgs))
	for _, m := range msgs {
		if m.TagID < 0 || m.TagID > 255 {
			return nil, fmt.Errorf("reliable: tag id %d out of the 8-bit header range", m.TagID)
		}
		if err := net.SetPayload(m.TagID, frame(m)); err != nil {
			return nil, err
		}
		want[m.TagID] = m.Data
	}
	res := &Result{Delivered: make(map[int][]byte)}
	currentRates := make([]float64, len(net.Tags()))
	for i, tc := range net.Tags() {
		currentRates[i] = tc.BitRate
	}
	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		ep, err := net.RunEpoch()
		if err != nil {
			return nil, err
		}
		dec, err := lf.NewDecoder(net.DecoderConfig())
		if err != nil {
			return nil, err
		}
		out, err := dec.Decode(ep)
		if err != nil {
			return nil, err
		}
		collided, slots, lowConf := 0, 0, 0
		confSum := 0.0
		for _, sr := range out.Streams {
			collided += sr.CollidedSlots
			slots += len(sr.Slots)
			confSum += sr.Confidence
			if id, data, ok := parseFrame(sr.Bits); ok {
				// Acceptance requires both the CRC and the decoder's
				// own confidence: a frame assembled from a marginal
				// Viterbi path can pass a 16-bit CRC by chance, and on
				// a badly degraded channel those candidates are
				// plentiful. Low-confidence frames just retransmit.
				if sr.Confidence < cfg.MinConfidence {
					lowConf++
					continue
				}
				if wantData, known := want[id]; known && !bitsEqual(data, wantData) {
					continue // CRC collision against a corrupted frame; ignore
				} else if known {
					res.Delivered[id] = data
				}
			}
		}
		stats := EpochStats{
			Seconds:       ep.Capture.Duration(),
			Delivered:     len(res.Delivered),
			MaxRate:       maxRate(currentRates),
			LowConfidence: lowConf,
		}
		if len(out.Streams) > 0 {
			stats.MeanConfidence = confSum / float64(len(out.Streams))
		}
		if slots > 0 {
			stats.CollisionRate = float64(collided) / float64(slots)
		}
		res.Epochs = append(res.Epochs, stats)
		res.Seconds += stats.Seconds
		if len(res.Delivered) == len(want) {
			res.Complete = true
			return res, nil
		}
		// Reader policy: thin the edge density when collisions are
		// heavy, by halving the fastest rates (slow tags are exempt —
		// §3.6 notes they rarely cause collisions).
		if stats.CollisionRate > cfg.CollisionRateThreshold {
			reduced := false
			for i, r := range currentRates {
				if r/2 >= cfg.MinRate {
					if err := net.SetBitRate(i, r/2); err == nil {
						currentRates[i] = r / 2
						reduced = true
					}
				}
			}
			if reduced {
				res.RateReductions++
				// Re-frame payloads: rate changes re-derive epoch
				// duration but payloads are already set per tag.
			}
		}
	}
	return res, nil
}

func bitsEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func maxRate(rates []float64) float64 {
	m := 0.0
	for _, r := range rates {
		if r > m {
			m = r
		}
	}
	return m
}
