package reliable

import (
	"testing"

	"lf"
	"lf/internal/rng"
)

func buildSession(t *testing.T, n int, seed int64, dataBits int) (*lf.Network, []Message) {
	t.Helper()
	net, err := lf.NewNetwork(lf.NetworkConfig{NumTags: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed + 100)
	msgs := make([]Message, n)
	for i := range msgs {
		msgs[i] = Message{TagID: i, Data: src.Bits(dataBits)}
	}
	return net, msgs
}

func TestFrameRoundTrip(t *testing.T) {
	src := rng.New(1)
	m := Message{TagID: 13, Data: src.Bits(64)}
	bits := frame(m)
	id, data, ok := parseFrame(bits)
	if !ok || id != 13 || !bitsEqual(data, m.Data) {
		t.Fatalf("roundtrip failed: id=%d ok=%v", id, ok)
	}
	// Any single-bit corruption must invalidate the frame.
	for i := 0; i < len(bits); i += 7 {
		bits[i] ^= 1
		if _, _, ok := parseFrame(bits); ok {
			t.Fatalf("corruption at %d undetected", i)
		}
		bits[i] ^= 1
	}
}

func TestParseFrameRejectsShort(t *testing.T) {
	if _, _, ok := parseFrame(make([]byte, 20)); ok {
		t.Fatal("short frame accepted")
	}
}

func TestCollectSingleTag(t *testing.T) {
	net, msgs := buildSession(t, 1, 3, 120)
	res, err := Collect(net, msgs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Epochs) != 1 {
		t.Fatalf("single tag needed %d epochs (complete=%v)", len(res.Epochs), res.Complete)
	}
	if !bitsEqual(res.Delivered[0], msgs[0].Data) {
		t.Fatal("delivered data mismatch")
	}
}

func TestCollectEightTags(t *testing.T) {
	net, msgs := buildSession(t, 8, 5, 96)
	res, err := Collect(net, msgs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("session incomplete after %d epochs: %d/%d delivered",
			len(res.Epochs), len(res.Delivered), len(msgs))
	}
	for _, m := range msgs {
		if !bitsEqual(res.Delivered[m.TagID], m.Data) {
			t.Fatalf("tag %d data corrupted", m.TagID)
		}
	}
	// Retransmission must make progress monotonically.
	prev := 0
	for _, es := range res.Epochs {
		if es.Delivered < prev {
			t.Fatal("delivered count went backwards")
		}
		prev = es.Delivered
	}
}

func TestCollectValidation(t *testing.T) {
	net, msgs := buildSession(t, 2, 7, 32)
	if _, err := Collect(net, msgs[:1], DefaultConfig()); err == nil {
		t.Fatal("message count mismatch accepted")
	}
	bad := DefaultConfig()
	bad.MaxEpochs = 0
	if _, err := Collect(net, msgs, bad); err == nil {
		t.Fatal("zero MaxEpochs accepted")
	}
	msgs[0].TagID = 300
	if _, err := Collect(net, msgs, DefaultConfig()); err == nil {
		t.Fatal("oversized tag id accepted")
	}
}

func TestRateReductionTriggers(t *testing.T) {
	// Force heavy collisions: 12 fast tags, aggressive threshold.
	net, msgs := buildSession(t, 12, 11, 200)
	cfg := DefaultConfig()
	cfg.CollisionRateThreshold = 0.01 // trigger on any collision
	cfg.MaxEpochs = 3
	res, err := Collect(net, msgs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RateReductions == 0 {
		t.Fatal("aggressive threshold never triggered a slow-down")
	}
	// The recorded max rate must drop after the first reduction.
	if len(res.Epochs) >= 2 && res.Epochs[1].MaxRate >= res.Epochs[0].MaxRate {
		t.Fatalf("rate did not drop: %v -> %v", res.Epochs[0].MaxRate, res.Epochs[1].MaxRate)
	}
}
