// Package wire is the length-prefixed, CRC-guarded framing shared by
// the repo's TCP protocols: the distributed shard protocol
// (internal/dist) and the reader-gateway ingest protocol
// (internal/gate). Both speak the same frame shape —
//
//	magic(2) | type(1) | payloadLen(4, LE) | payload | crc32(4, LE)
//
// — differing only in their magic bytes, payload cap, and message
// codecs. The CRC (IEEE) covers type, length, and payload, so a
// flipped bit anywhere in the frame — header or body — is detected
// before any field is trusted. Payload integers are little-endian;
// float64s travel as IEEE-754 bit patterns (math.Float64bits), so
// shipped samples, prefix sums, and magnitudes are bit-exact across
// hosts.
//
// Framing violations (bad magic, CRC mismatch, oversized payload,
// trailing bytes) surface as *wire.Error so protocol layers can treat
// them like a dead connection — recoverable by reconnect/retry, never
// fatal — while transport failures (io.EOF, timeouts) pass through
// verbatim.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Proto pins one protocol's framing parameters: the magic pair that
// distinguishes its frames on the wire, the payload cap that keeps a
// corrupt length field from allocating gigabytes, and the name used in
// error messages.
type Proto struct {
	// Name prefixes framing errors ("dist", "gate").
	Name string
	// Magic0, Magic1 open every frame.
	Magic0, Magic1 byte
	// MaxPayload bounds a frame's declared payload length.
	MaxPayload int
}

const (
	headerLen  = 2 + 1 + 4
	trailerLen = 4
)

// Error is any framing-level failure: bad magic, CRC mismatch,
// oversized payload, truncated or trailing payload bytes.
type Error struct {
	proto string
	msg   string
}

func (e *Error) Error() string { return e.proto + ": wire: " + e.msg }

// Errf builds a framing error tagged with the protocol's name.
func (p Proto) Errf(format string, args ...any) error {
	return &Error{proto: p.Name, msg: fmt.Sprintf(format, args...)}
}

// WriteFrame sends one frame. The payload is borrowed, not retained.
func (p Proto) WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > p.MaxPayload {
		return p.Errf("payload %d exceeds max %d", len(payload), p.MaxPayload)
	}
	buf := make([]byte, headerLen+len(payload)+trailerLen)
	buf[0], buf[1], buf[2] = p.Magic0, p.Magic1, typ
	binary.LittleEndian.PutUint32(buf[3:], uint32(len(payload)))
	copy(buf[headerLen:], payload)
	crc := crc32.ChecksumIEEE(buf[2 : headerLen+len(payload)])
	binary.LittleEndian.PutUint32(buf[headerLen+len(payload):], crc)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads and verifies one frame, returning its type and
// payload. Errors distinguish transport failures (returned verbatim,
// e.g. io.EOF, timeouts) from framing violations (*wire.Error).
func (p Proto) ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != p.Magic0 || hdr[1] != p.Magic1 {
		return 0, nil, p.Errf("bad magic %02x%02x", hdr[0], hdr[1])
	}
	n := binary.LittleEndian.Uint32(hdr[3:])
	if int64(n) > int64(p.MaxPayload) {
		return 0, nil, p.Errf("payload length %d exceeds max %d", n, p.MaxPayload)
	}
	body := make([]byte, int(n)+trailerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	crc := crc32.ChecksumIEEE(hdr[2:])
	crc = crc32.Update(crc, crc32.IEEETable, body[:n])
	if got := binary.LittleEndian.Uint32(body[n:]); got != crc {
		return 0, nil, p.Errf("crc mismatch on type %d frame", hdr[2])
	}
	return hdr[2], body[:n:n], nil
}

// Enc is a little append-based payload encoder.
type Enc struct{ B []byte }

func (e *Enc) U8(v byte)     { e.B = append(e.B, v) }
func (e *Enc) U32(v uint32)  { e.B = binary.LittleEndian.AppendUint32(e.B, v) }
func (e *Enc) U64(v uint64)  { e.B = binary.LittleEndian.AppendUint64(e.B, v) }
func (e *Enc) I64(v int64)   { e.U64(uint64(v)) }
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.B = append(e.B, s...)
}
func (e *Enc) Floats(v []float64) {
	e.U32(uint32(len(v)))
	for _, f := range v {
		e.F64(f)
	}
}

// Dec is the matching consuming decoder; every getter fails softly by
// latching the error, so codecs can decode a whole struct and check
// once with Done.
type Dec struct {
	B   []byte
	err error
}

// NewDec wraps a payload for decoding.
func NewDec(b []byte) Dec { return Dec{B: b} }

// Err returns the latched decode failure, if any.
func (d *Dec) Err() error { return d.err }

func (d *Dec) fail() {
	if d.err == nil {
		d.err = &Error{proto: "wire", msg: "truncated payload"}
	}
}

func (d *Dec) U8() byte {
	if d.err != nil || len(d.B) < 1 {
		d.fail()
		return 0
	}
	v := d.B[0]
	d.B = d.B[1:]
	return v
}

func (d *Dec) U32() uint32 {
	if d.err != nil || len(d.B) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.B)
	d.B = d.B[4:]
	return v
}

func (d *Dec) U64() uint64 {
	if d.err != nil || len(d.B) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.B)
	d.B = d.B[8:]
	return v
}

func (d *Dec) I64() int64   { return int64(d.U64()) }
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

func (d *Dec) Str() string {
	n := d.U32()
	if d.err != nil || uint32(len(d.B)) < n {
		d.fail()
		return ""
	}
	s := string(d.B[:n])
	d.B = d.B[n:]
	return s
}

func (d *Dec) Floats() []float64 {
	n := d.U32()
	if d.err != nil || uint64(len(d.B)) < uint64(n)*8 {
		d.fail()
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// Done reports the latched error, or complains about trailing payload
// bytes — a codec must consume its frame exactly.
func (d *Dec) Done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.B) != 0 {
		return &Error{proto: "wire", msg: fmt.Sprintf("%d trailing payload bytes", len(d.B))}
	}
	return nil
}
