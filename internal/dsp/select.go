// Linear-time order statistics for the noise-floor estimate. The
// detector takes one median per capture over the full differential
// series — with sort.Float64s that was the single largest flat cost in
// the edge-detection profile (an O(n log n) pdqsort of ~10⁵ floats per
// epoch). Quickselect returns the identical order statistic in O(n):
// the k-th smallest value under a total order does not depend on the
// algorithm that finds it.
package dsp

import "math"

// fless orders float64s exactly like sort.Float64s / slices.Sort: NaNs
// first, then ascending value. Matching the library order keeps the
// selected order statistics identical to the sorted reference even on
// adversarial inputs carrying NaNs.
func fless(a, b float64) bool {
	return a < b || (math.IsNaN(a) && !math.IsNaN(b))
}

// selectSmall is the window size below which selection finishes with an
// insertion sort instead of further partitioning.
const selectSmall = 12

// selectFloat partially rearranges a so that a[k] holds the k-th
// smallest element (0-based, fless order) and every element of a[:k]
// orders at or below it. Three-way partitioning collapses runs of equal
// keys — the common case for blanked differential series — in one pass.
func selectFloat(a []float64, k int) float64 {
	lo, hi := 0, len(a)
	for hi-lo > selectSmall {
		p := pivotFloat(a, lo, hi)
		lt, gt := partition3(a, lo, hi, p)
		switch {
		case k < lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return p // a[lt:gt] all equal p, and a[:lt] orders below
		}
	}
	insertionFloats(a[lo:hi])
	return a[k]
}

// pivotFloat picks a partition pivot: median of three for small
// windows, ninther (median of three medians-of-three) for large ones,
// bounding the depth on organ-pipe and killer-sequence inputs.
func pivotFloat(a []float64, lo, hi int) float64 {
	n := hi - lo
	m := lo + n/2
	if n > 512 {
		s := n / 8
		return median3(
			median3(a[lo], a[lo+s], a[lo+2*s]),
			median3(a[m-s], a[m], a[m+s]),
			median3(a[hi-1-2*s], a[hi-1-s], a[hi-1]),
		)
	}
	return median3(a[lo], a[m], a[hi-1])
}

func median3(x, y, z float64) float64 {
	if fless(y, x) {
		x, y = y, x
	}
	if fless(z, y) {
		y = z
		if fless(y, x) {
			y = x
		}
	}
	return y
}

// partition3 is a Dutch-national-flag pass: on return a[lo:lt] orders
// strictly below p, a[lt:gt] is equivalent to p, a[gt:hi] strictly
// above.
func partition3(a []float64, lo, hi int, p float64) (lt, gt int) {
	i, lt, gt := lo, lo, hi
	for i < gt {
		x := a[i]
		switch {
		case fless(x, p):
			a[i], a[lt] = a[lt], x
			lt++
			i++
		case fless(p, x):
			gt--
			a[i], a[gt] = a[gt], a[i]
		default:
			i++
		}
	}
	return lt, gt
}

func insertionFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && fless(x, a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// maxFloat returns the greatest element of a under the fless order.
func maxFloat(a []float64) float64 {
	m := a[0]
	for _, v := range a[1:] {
		if fless(m, v) {
			m = v
		}
	}
	return m
}
