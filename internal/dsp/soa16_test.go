package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// quantizePrefix builds the wrapping int32 quantized prefix sums from
// float64 SoA prefix arrays, exactly as the streaming edge detector
// does: each sample is read back as a prefix difference before
// quantization, so the bound in DiffSweepSparse16 holds against the
// very values the dense kernel consumes.
func quantizePrefix(re, im []float64, scale float64) (qre, qim []int32, ok bool) {
	qre = make([]int32, len(re))
	qim = make([]int32, len(im))
	var ar, ai int32
	for j := 1; j < len(re); j++ {
		r := math.RoundToEven((re[j] - re[j-1]) * scale)
		i := math.RoundToEven((im[j] - im[j-1]) * scale)
		if r > QuantClip || r < -QuantClip || i > QuantClip || i < -QuantClip {
			return nil, nil, false
		}
		ar += int32(r)
		ai += int32(i)
		qre[j] = ar
		qim[j] = ai
	}
	return qre, qim, true
}

// TestDiffSweepSparse16MatchesDense pins the quantized sparse kernel's
// contract on the same signal shapes as the float64 sparse test:
// positions are either bit-identical to the dense sweep or zero-filled
// don't-cares with sub-threshold dense values and no threshold
// crossing within guard.
func TestDiffSweepSparse16MatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const gap, win = int64(2), int64(3)
	const guard = gap + 2
	margin := int(gap + win)
	for trial := 0; trial < 6; trial++ {
		n := 500 + rng.Intn(4000)
		samples := stepCapture(rng, n)
		var maxComp float64
		for _, v := range samples {
			maxComp = math.Max(maxComp, math.Max(math.Abs(real(v)), math.Abs(imag(v))))
		}
		scale := QuantTarget / maxComp
		soa := NewPrefixSoA(samples)
		qre, qim, ok := quantizePrefix(soa.Re, soa.Im, scale)
		if !ok {
			t.Fatal("quantization overflow on in-range capture")
		}
		j0 := margin
		m := n - 2*margin
		dense := make([]float64, m)
		DiffSweep(soa.Re, soa.Im, j0, gap, win, dense)
		qerr := QuantErr(1/scale, maxComp)
		for _, thr := range []float64{0.01, 0.2, 1.0, 5.0} {
			sparse := make([]float64, m)
			DiffSweepSparse16(qre, qim, soa.Re, soa.Im, j0, gap, win, guard,
				qerr, 1/scale, thr, margin, n-margin, sparse)
			checkSparseContract(t, dense, sparse, thr, int(guard))
		}
		soa.Release()
	}
}

// TestDiffSweepSparse16WrapSafe forces the int32 prefix sums to wrap —
// a strong DC component over a long capture — and asserts the contract
// still holds: only window differences are consumed, and those stay
// exact under two's-complement wrap-subtraction.
func TestDiffSweepSparse16WrapSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const gap, win = int64(2), int64(3)
	const guard = gap + 2
	margin := int(gap + win)
	// ~260k samples at quantized DC ≈ 10700 per component overflows the
	// int32 prefix (~2.1e9) midway.
	n := 260000
	samples := make([]complex128, n)
	for i := range samples {
		samples[i] = complex(1.0, 1.0) + complex(rng.NormFloat64()*0.01, rng.NormFloat64()*0.01)
		if i%20011 == 0 {
			samples[i] += complex(0.5, -0.5)
		}
	}
	var maxComp float64
	for _, v := range samples {
		maxComp = math.Max(maxComp, math.Max(math.Abs(real(v)), math.Abs(imag(v))))
	}
	scale := QuantTarget / maxComp
	soa := NewPrefixSoA(samples)
	defer soa.Release()
	qre, qim, ok := quantizePrefix(soa.Re, soa.Im, scale)
	if !ok {
		t.Fatal("quantization overflow on in-range capture")
	}
	wrapped := false
	for _, v := range qre {
		if v < 0 {
			wrapped = true
			break
		}
	}
	if !wrapped {
		t.Fatal("test capture did not wrap the int32 prefix; raise n")
	}
	m := n - 2*margin
	dense := make([]float64, m)
	DiffSweep(soa.Re, soa.Im, margin, gap, win, dense)
	qerr := QuantErr(1/scale, maxComp)
	for _, thr := range []float64{0.05, 0.3} {
		sparse := make([]float64, m)
		DiffSweepSparse16(qre, qim, soa.Re, soa.Im, margin, gap, win, guard,
			qerr, 1/scale, thr, margin, n-margin, sparse)
		checkSparseContract(t, dense, sparse, thr, int(guard))
	}
}
