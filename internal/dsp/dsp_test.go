package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrefixSumMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	samples := make([]complex128, 200)
	for i := range samples {
		samples[i] = complex(r.Float64(), r.Float64())
	}
	p := NewPrefix(samples)
	f := func(a, b uint16) bool {
		lo := int64(a) % int64(len(samples)+10)
		hi := int64(b) % int64(len(samples)+10)
		if lo > hi {
			lo, hi = hi, lo
		}
		var want complex128
		for i := lo; i < hi && i < int64(len(samples)); i++ {
			if i >= 0 {
				want += samples[i]
			}
		}
		got := p.Sum(lo, hi)
		return cAbs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func cAbs(x complex128) float64 { return math.Hypot(real(x), imag(x)) }

func TestPrefixMeanEmptyWindow(t *testing.T) {
	p := NewPrefix([]complex128{1, 2, 3})
	if p.Mean(2, 2) != 0 {
		t.Fatal("empty window mean should be 0")
	}
	if p.Mean(5, 9) != 0 {
		t.Fatal("out-of-range mean should be 0")
	}
}

// TestDifferentialOnStep checks that the differential across a clean
// step recovers the step height.
func TestDifferentialOnStep(t *testing.T) {
	samples := make([]complex128, 100)
	step := complex(2, -1)
	for i := 50; i < 100; i++ {
		samples[i] = step
	}
	p := NewPrefix(samples)
	got := p.Differential(50, 2, 10)
	if cAbs(got-step) > 1e-12 {
		t.Fatalf("differential %v, want %v", got, step)
	}
	// Far from the step the differential is zero.
	if cAbs(p.Differential(20, 2, 5)) > 1e-12 {
		t.Fatal("differential away from the step should be 0")
	}
}

func TestDifferentialSeriesPeaksAtStep(t *testing.T) {
	samples := make([]complex128, 60)
	for i := 30; i < 60; i++ {
		samples[i] = 1
	}
	p := NewPrefix(samples)
	mag := p.DifferentialSeries(2, 4)
	best := 0
	for i, v := range mag {
		if v > mag[best] {
			best = i
		}
	}
	if best < 28 || best > 32 {
		t.Fatalf("peak at %d, want ~30", best)
	}
}

func TestMedianFloat(t *testing.T) {
	if MedianFloat(nil) != 0 {
		t.Fatal("median of empty should be 0")
	}
	if got := MedianFloat([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v", got)
	}
	if got := MedianFloat([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v", got)
	}
	// Input must not be mutated.
	in := []float64{9, 1, 5}
	MedianFloat(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Fatal("MedianFloat mutated its input")
	}
}

func TestFindPeaksThreshold(t *testing.T) {
	mag := []float64{0, 0, 5, 0, 0, 3, 0, 0}
	peaks := FindPeaks(mag, 4, 1)
	if len(peaks) != 1 || peaks[0].Pos != 2 {
		t.Fatalf("peaks = %+v", peaks)
	}
}

func TestFindPeaksNMS(t *testing.T) {
	mag := []float64{0, 5, 0, 4, 0, 0, 0, 6, 0}
	peaks := FindPeaks(mag, 1, 4)
	// 5 at pos 1 and 4 at pos 3 are within 4 samples: keep the larger.
	if len(peaks) != 2 {
		t.Fatalf("peaks = %+v, want 2 after suppression", peaks)
	}
	if peaks[0].Pos != 1 || peaks[1].Pos != 7 {
		t.Fatalf("peaks = %+v", peaks)
	}
}

func TestFindPeaksSortedByPosition(t *testing.T) {
	mag := make([]float64, 100)
	mag[10], mag[40], mag[80] = 3, 9, 5
	peaks := FindPeaks(mag, 1, 5)
	for i := 1; i < len(peaks); i++ {
		if peaks[i].Pos <= peaks[i-1].Pos {
			t.Fatalf("peaks not sorted: %+v", peaks)
		}
	}
}

func TestFindPeaksPlateau(t *testing.T) {
	mag := []float64{0, 2, 2, 2, 0}
	peaks := FindPeaks(mag, 1, 1)
	if len(peaks) != 1 {
		t.Fatalf("plateau produced %d peaks", len(peaks))
	}
}

func TestEyeHistogramFolding(t *testing.T) {
	// Edges at a fixed phase of a 100-sample period all land in one bin.
	var positions []int64
	for k := int64(0); k < 20; k++ {
		positions = append(positions, 37+k*100)
	}
	counts := EyeHistogram(positions, 100, 25)
	bin, peak, background := EyePeak(counts)
	if peak != 20 {
		t.Fatalf("peak count %d, want 20", peak)
	}
	if background != 0 {
		t.Fatalf("background %v, want 0", background)
	}
	if bin != 37*25/100 {
		t.Fatalf("peak bin %d", bin)
	}
}

func TestEyeHistogramDegenerate(t *testing.T) {
	if counts := EyeHistogram([]int64{1, 2}, 0, 10); len(counts) != 10 {
		t.Fatal("zero period should yield empty counts of requested size")
	}
	bin, peak, _ := EyePeak(nil)
	if bin != 0 || peak != 0 {
		t.Fatal("EyePeak of empty input should be zeros")
	}
}

func TestFoldedMeanAverages(t *testing.T) {
	series := make([]float64, 100)
	for k := 0; k < 10; k++ {
		series[5+k*10] = 2
	}
	if got := FoldedMean(series, 5, 10, 10); math.Abs(got-2) > 1e-12 {
		t.Fatalf("folded mean %v, want 2", got)
	}
	if FoldedMean(series, 5, 10, 0) != 0 {
		t.Fatal("zero reps should give 0")
	}
}

func TestAbsDist(t *testing.T) {
	if Abs(3+4i) != 5 {
		t.Fatal("Abs(3+4i) != 5")
	}
	if Dist(1+1i, 4+5i) != 5 {
		t.Fatal("Dist != 5")
	}
}

func TestNoiseFloorIgnoresSparseEdges(t *testing.T) {
	// 1% of samples carry large edge differentials; the median must
	// stay on the noise.
	mag := make([]float64, 1000)
	for i := range mag {
		mag[i] = 0.1
	}
	for i := 0; i < 10; i++ {
		mag[i*100] = 50
	}
	if got := NoiseFloor(mag); got != 0.1 {
		t.Fatalf("noise floor %v, want 0.1", got)
	}
}
