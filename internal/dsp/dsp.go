// Package dsp implements the signal-processing primitives the
// LF-Backscatter reader pipeline is built from: O(1) windowed means via
// prefix sums, IQ edge differentials (the ΔS(t) = S(t⁺) − S(t⁻) of the
// paper's §3.1), threshold estimation, peak detection with non-maximum
// suppression, and eye-pattern folding (§3.2).
package dsp

import (
	"math"
	"slices"

	"lf/internal/pool"
	"lf/internal/work"
)

// Prefix holds cumulative sums of a complex series so that the mean of
// any window can be computed in O(1). Index i of the prefix stores the
// sum of samples [0, i).
type Prefix struct {
	sums []complex128
	n    int64
}

// NewPrefix builds prefix sums over samples. The internal buffer comes
// from the shared scratch pool; callers that are done with a Prefix
// may call Release to recycle it (and must not use the Prefix after).
func NewPrefix(samples []complex128) *Prefix {
	p := &Prefix{sums: pool.Complex(len(samples) + 1), n: int64(len(samples))}
	var acc complex128
	for i, v := range samples {
		acc += v
		p.sums[i+1] = acc
	}
	return p
}

// Release returns the prefix's buffer to the scratch pool. The Prefix
// must not be used afterwards. Calling Release is optional — an
// unreleased buffer is simply garbage-collected.
func (p *Prefix) Release() {
	pool.PutComplex(p.sums)
	p.sums = nil
	p.n = 0
}

// Len returns the number of underlying samples.
func (p *Prefix) Len() int64 { return p.n }

// Sum returns the sum of samples in [lo, hi), clamped to the series.
func (p *Prefix) Sum(lo, hi int64) complex128 {
	if lo < 0 {
		lo = 0
	}
	if hi > p.n {
		hi = p.n
	}
	if lo >= hi {
		return 0
	}
	return p.sums[hi] - p.sums[lo]
}

// Mean returns the mean of samples in [lo, hi), clamped; 0 if empty.
func (p *Prefix) Mean(lo, hi int64) complex128 {
	if lo < 0 {
		lo = 0
	}
	if hi > p.n {
		hi = p.n
	}
	if lo >= hi {
		return 0
	}
	return p.Sum(lo, hi) / complex(float64(hi-lo), 0)
}

// Differential returns the IQ differential across position pos:
// mean of the win samples starting gap after pos, minus the mean of the
// win samples ending gap before pos. gap skips the (few-sample) edge
// transition itself so the two windows straddle it cleanly.
func (p *Prefix) Differential(pos, gap, win int64) complex128 {
	after := p.Mean(pos+gap, pos+gap+win)
	before := p.Mean(pos-gap-win, pos-gap)
	return after - before
}

// DifferentialSeries computes |Differential| at every sample position.
// The result has the same length as the underlying series; positions
// too close to the ends use clamped (shorter) windows.
func (p *Prefix) DifferentialSeries(gap, win int64) []float64 {
	out := make([]float64, p.n)
	p.DifferentialSeriesInto(out, gap, win, 1)
	return out
}

// DifferentialSeriesInto fills dst (which must have length p.Len())
// with |Differential| at every sample position, fanning the work out
// over at most `workers` goroutines (see work.Resolve for the knob
// semantics). Each position is a pure O(1) function of the prefix
// sums, so the chunked result is bit-identical to the serial one at
// any worker count.
func (p *Prefix) DifferentialSeriesInto(dst []float64, gap, win int64, workers int) {
	if int64(len(dst)) != p.n {
		panic("dsp: DifferentialSeriesInto length mismatch")
	}
	work.DoRanges(workers, int(p.n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d := p.Differential(int64(i), gap, win)
			dst[i] = math.Hypot(real(d), imag(d))
		}
	})
}

// MedianFloat returns the median of xs. It copies into pooled scratch
// and quickselects — O(n) instead of a full sort, yielding the exact
// same order statistics (NaNs ordering first, as in sort.Float64s).
// xs is not modified. Returns 0 for an empty slice.
func MedianFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := pool.Float(len(xs))
	copy(cp, xs)
	m := len(cp) / 2
	med := selectFloat(cp, m)
	if len(cp)%2 == 0 {
		med = (maxFloat(cp[:m]) + med) / 2
	}
	pool.PutFloat(cp)
	return med
}

// NoiseFloor estimates the background level of a differential-magnitude
// series as its median. Because edges are temporally sparse (≲1% of
// samples at the paper's oversampling ratios), the median sits on the
// noise, not on the edges.
func NoiseFloor(mag []float64) float64 { return MedianFloat(mag) }

// Peak is a local maximum of a differential-magnitude series.
type Peak struct {
	// Pos is the sample index of the maximum.
	Pos int64
	// Value is the magnitude at the maximum.
	Value float64
}

// FindPeaks returns local maxima of mag that exceed threshold, with
// non-maximum suppression: within any window of minSpacing samples only
// the largest peak survives. Peaks are returned in increasing position.
func FindPeaks(mag []float64, threshold float64, minSpacing int64) []Peak {
	return FindPeaksParallel(mag, threshold, minSpacing, 1)
}

// FindPeaksParallel is FindPeaks with the local-maximum scan chunked
// across at most `workers` goroutines. Each chunk reads its boundary
// neighbours from the shared series, so a peak sitting exactly on a
// chunk seam is classified exactly as in the serial scan — detected
// once, by the chunk that owns its index. The final non-maximum
// suppression runs globally over the (position-ordered) concatenation,
// making the result bit-identical at any worker count.
func FindPeaksParallel(mag []float64, threshold float64, minSpacing int64, workers int) []Peak {
	if minSpacing < 1 {
		minSpacing = 1
	}
	n := len(mag)
	bounds := work.Bounds(workers, n)
	if len(bounds) < 2 {
		return nil
	}
	chunked := make([][]Peak, len(bounds)-1)
	work.Do(work.Resolve(workers), len(bounds)-1, func(c int) {
		chunked[c] = scanPeaks(mag, bounds[c], bounds[c+1], threshold)
	})
	var peaks []Peak
	for _, ps := range chunked {
		peaks = append(peaks, ps...)
	}
	return Suppress(peaks, minSpacing)
}

// scanPeaks finds the raw local maxima of mag with index in [lo, hi).
// Neighbour comparisons read across the chunk boundary, so ownership
// of a boundary peak is unambiguous: the chunk containing its index.
func scanPeaks(mag []float64, lo, hi int, threshold float64) []Peak {
	var peaks []Peak
	n := len(mag)
	for i := lo; i < hi; i++ {
		v := mag[i]
		if v < threshold {
			continue
		}
		// Local maximum test against immediate neighbours. Plateaus
		// keep their first sample (the subsequent suppression pass
		// removes duplicates anyway).
		if i > 0 && mag[i-1] > v {
			continue
		}
		if i+1 < n && mag[i+1] > v {
			continue
		}
		if i > 0 && mag[i-1] == v {
			continue // plateau continuation
		}
		peaks = append(peaks, Peak{Pos: int64(i), Value: v})
	}
	return peaks
}

// Suppress applies greedy non-maximum suppression: peaks are visited in
// (value descending, position ascending) order — a total order, so the
// result is deterministic even under exact value ties — and any peak
// within minSpacing of an already accepted peak is dropped. The result
// is re-sorted by position; the input is not modified. Greedy
// acceptance only ever interacts within minSpacing, so running Suppress
// on position-separated chunks whose boundary gaps are ≥ minSpacing
// equals one global pass — the property the incremental edge detector's
// chunked flushing builds on.
//
// The conflict test uses a grid of minSpacing-wide cells: accepted
// peaks are pairwise ≥ minSpacing apart, so a cell holds at most one,
// and a candidate can only conflict with the occupants of its own and
// the two adjacent cells. That makes the pass O(n log n) in the peak
// count where the previous kept-list scan was O(n²) — quadratic
// exactly when it hurt, under spurious-edge fault floods.
func Suppress(peaks []Peak, minSpacing int64) []Peak {
	if len(peaks) <= 1 {
		return peaks
	}
	byValue := make([]Peak, len(peaks))
	copy(byValue, peaks)
	if minSpacing < 1 {
		// No two distinct positions can conflict; just order by position.
		sortPeaksByPos(byValue)
		return byValue
	}
	sortPeaksByValue(byValue)
	kept := suppressSorted(byValue[:0], byValue, nil, minSpacing)
	sortPeaksByPos(kept)
	return kept
}

func sortPeaksByValue(peaks []Peak) {
	slices.SortFunc(peaks, func(a, b Peak) int {
		if a.Value != b.Value {
			if a.Value > b.Value {
				return -1
			}
			return 1
		}
		switch {
		case a.Pos < b.Pos:
			return -1
		case a.Pos > b.Pos:
			return 1
		}
		return 0
	})
}

func sortPeaksByPos(peaks []Peak) {
	slices.SortFunc(peaks, func(a, b Peak) int {
		switch {
		case a.Pos < b.Pos:
			return -1
		case a.Pos > b.Pos:
			return 1
		}
		// Value-descending tiebreak makes the order total: duplicate
		// positions (possible only when minSpacing < 1) sort
		// deterministically.
		switch {
		case a.Value > b.Value:
			return -1
		case a.Value < b.Value:
			return 1
		}
		return 0
	})
}

// suppressSorted greedily accepts peaks from byValue (already in value
// desc, position asc order) into dst, skipping any within minSpacing of
// an accepted peak. cells may carry a reusable cell→position map (it is
// cleared first); nil allocates one. dst may alias byValue's backing
// array offset zero — acceptance only ever rewrites already-consumed
// entries.
func suppressSorted(dst, byValue []Peak, cells map[int64]int64, minSpacing int64) []Peak {
	if cells == nil {
		cells = make(map[int64]int64, len(byValue))
	} else {
		clear(cells)
	}
	for _, p := range byValue {
		c := p.Pos / minSpacing
		if p.Pos < 0 && p.Pos%minSpacing != 0 {
			c-- // floored division: cells stay minSpacing wide below zero
		}
		ok := true
		for _, cc := range [3]int64{c - 1, c, c + 1} {
			if kp, hit := cells[cc]; hit {
				d := p.Pos - kp
				if d < 0 {
					d = -d
				}
				if d < minSpacing {
					ok = false
					break
				}
			}
		}
		if ok {
			cells[c] = p.Pos
			dst = append(dst, p)
		}
	}
	return dst
}

// Suppressor is Suppress with caller-owned scratch, for allocation-free
// steady-state reuse (the streaming detector suppresses one chunk per
// flush). The zero value is ready to use.
type Suppressor struct {
	byValue []Peak
	cells   map[int64]int64
}

// Suppress runs the cell-grid NMS over chunk, reusing dst (re-sliced to
// zero length) for the result, which is returned sorted by position.
// Semantics are identical to the package-level Suppress; chunk is not
// modified.
func (sp *Suppressor) Suppress(dst, chunk []Peak, minSpacing int64) []Peak {
	sp.byValue = append(sp.byValue[:0], chunk...)
	if minSpacing < 1 {
		dst = append(dst[:0], sp.byValue...)
		sortPeaksByPos(dst)
		return dst
	}
	sortPeaksByValue(sp.byValue)
	if sp.cells == nil {
		sp.cells = make(map[int64]int64, 64)
	}
	dst = suppressSorted(dst[:0], sp.byValue, sp.cells, minSpacing)
	sortPeaksByPos(dst)
	return dst
}

// RetainedBytes reports the live scratch held by the suppressor, for
// callers that account their window state (the streaming detector).
func (sp *Suppressor) RetainedBytes() int64 {
	return int64(len(sp.byValue)) * 16
}

// EyeHistogram folds a set of edge positions modulo period into bins
// phase buckets and returns the per-bucket counts. This is the paper's
// eye-pattern construction: a genuine stream at the folded rate piles
// all of its edges into one bucket (±jitter), while noise spreads
// uniformly.
func EyeHistogram(positions []int64, period float64, bins int) []int {
	counts := make([]int, bins)
	if period <= 0 || bins <= 0 {
		return counts
	}
	for _, pos := range positions {
		phase := math.Mod(float64(pos), period)
		if phase < 0 {
			phase += period
		}
		b := int(phase / period * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return counts
}

// EyePeak returns the index and count of the largest bucket of an eye
// histogram, plus the mean count of the remaining buckets (the
// background level against which the peak's significance is judged).
func EyePeak(counts []int) (bin, peak int, background float64) {
	if len(counts) == 0 {
		return 0, 0, 0
	}
	bin = 0
	peak = counts[0]
	total := 0
	for i, c := range counts {
		total += c
		if c > peak {
			peak, bin = c, i
		}
	}
	if len(counts) > 1 {
		background = float64(total-peak) / float64(len(counts)-1)
	}
	return bin, peak, background
}

// FoldedMean folds samples at positions pos+k·period (k = 0..reps-1)
// from series and returns their average. Repetitive folding averages
// the per-edge noise σ down by √reps, which is why the paper's eye
// pattern detects weak streams reliably.
func FoldedMean(series []float64, pos int64, period float64, reps int) float64 {
	if reps <= 0 {
		return 0
	}
	var sum float64
	n := 0
	for k := 0; k < reps; k++ {
		idx := pos + int64(math.Round(float64(k)*period))
		if idx < 0 || idx >= int64(len(series)) {
			continue
		}
		sum += series[idx]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Abs returns |x| for a complex value (hypot of the parts).
func Abs(x complex128) float64 { return math.Hypot(real(x), imag(x)) }

// Dist returns the Euclidean distance between two complex points.
func Dist(a, b complex128) float64 { return Abs(a - b) }
