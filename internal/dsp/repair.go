package dsp

import "math"

// Prefix-sum subtract-and-repair support for incremental SIC
// (DESIGN.md §17). A cancellation round changes the residual capture
// only inside the cancelled streams' dirty spans, and every consumer
// of the SoA prefix sums reads windowed differences sums[hi]−sums[lo];
// a difference is invariant to the fold's starting base, so the lanes
// can be (re)folded span-locally — each dirty region from its own
// committed (or zeroed) accumulator, bounded to the region — at
// O(dirty) cost instead of O(capture). RepairPrefix is the fold
// kernel: entry j depends only on the accumulator at the cut and the
// samples in [cut, j), so a suffix refold from a committed accumulator
// is bitwise identical to a full refold, and a bounded refold from a
// zero base yields differences bitwise identical to the from-origin
// lanes within the folded region.

// RepairPrefix refolds the from-origin prefix-sum lanes re/im (each
// len(samples)+1, re[j] = Σ real(samples[0:j])) over samples[from:],
// reading the committed accumulator at index from and rewriting
// entries (from, len(samples)]. Entries at or below from are not
// touched or read beyond re[from]/im[from].
//
// Samples must satisfy the edge detector's admission gate: finite and
// with |component| < maxMag (edgedetect's maxSampleMag — past it the
// running sums could overflow to Inf and poison every windowed mean).
// The fold stops at the first sample that fails the gate and its index
// is returned; the caller must then fall back to the push path, whose
// hold-last-finite replacement owns that semantics. Returns -1 when
// the whole suffix folded cleanly.
func RepairPrefix(re, im []float64, samples []complex128, from int, maxMag float64) int {
	accRe, accIm := re[from], im[from]
	for j := from; j < len(samples); j++ {
		sr, si := real(samples[j]), imag(samples[j])
		if math.IsNaN(sr) || math.IsNaN(si) ||
			sr >= maxMag || sr <= -maxMag || si >= maxMag || si <= -maxMag {
			return j
		}
		accRe += sr
		accIm += si
		re[j+1] = accRe
		im[j+1] = accIm
	}
	return -1
}
