// Structure-of-arrays differential-sweep kernels. The edge detector's
// hot loop evaluates the windowed IQ differential at every sample
// position; doing that over split float64 I/Q prefix-sum arrays (rather
// than []complex128) keeps the loads sequential, drops the complex
// division (a full Smith's-algorithm expansion in Go) down to two plain
// float divides per component, and removes every per-position branch.
//
// Bit-identity with the complex128 path is load-bearing, not best
// effort: the componentwise mean (Σre)/n, (Σim)/n is bitwise equal to
// complex division by complex(n, 0) — Go's complex quotient with a
// zero imaginary divisor reduces to exactly those two divisions — and
// every kernel below performs the same operations in the same order as
// the reference Prefix/meanRange code. TestPrefixSoAMatchesComplex and
// FuzzDiffSweepSparse pin the equivalence.
package dsp

import (
	"math"

	"lf/internal/pool"
	"lf/internal/work"
)

// PrefixSoA is Prefix with the cumulative sums split into separate
// real/imaginary float64 arrays. Index i stores the componentwise sum
// of samples [0, i).
type PrefixSoA struct {
	Re, Im []float64
	n      int64
}

// NewPrefixSoA builds SoA prefix sums over samples. Buffers come from
// the shared scratch pool; Release recycles them.
func NewPrefixSoA(samples []complex128) *PrefixSoA {
	p := &PrefixSoA{
		Re: pool.Float(len(samples) + 1),
		Im: pool.Float(len(samples) + 1),
		n:  int64(len(samples)),
	}
	var ar, ai float64
	for i, v := range samples {
		ar += real(v)
		ai += imag(v)
		p.Re[i+1] = ar
		p.Im[i+1] = ai
	}
	return p
}

// Release returns the buffers to the scratch pool. The PrefixSoA must
// not be used afterwards.
func (p *PrefixSoA) Release() {
	pool.PutFloat(p.Re)
	pool.PutFloat(p.Im)
	p.Re, p.Im, p.n = nil, nil, 0
}

// Len returns the number of underlying samples.
func (p *PrefixSoA) Len() int64 { return p.n }

// Mean returns the mean of samples in [lo, hi), clamped; 0 if empty.
// Bitwise equal to Prefix.Mean.
func (p *PrefixSoA) Mean(lo, hi int64) complex128 {
	if lo < 0 {
		lo = 0
	}
	if hi > p.n {
		hi = p.n
	}
	if lo >= hi {
		return 0
	}
	fn := float64(hi - lo)
	return complex((p.Re[hi]-p.Re[lo])/fn, (p.Im[hi]-p.Im[lo])/fn)
}

// Differential is Prefix.Differential over the SoA sums.
func (p *PrefixSoA) Differential(pos, gap, win int64) complex128 {
	after := p.Mean(pos+gap, pos+gap+win)
	before := p.Mean(pos-gap-win, pos-gap)
	return after - before
}

// DifferentialSeriesInto fills dst with |Differential| at every
// position, bitwise equal to Prefix.DifferentialSeriesInto: clamped
// windows near the series ends, the branch-free DiffSweep kernel over
// the interior.
func (p *PrefixSoA) DifferentialSeriesInto(dst []float64, gap, win int64, workers int) {
	if int64(len(dst)) != p.n {
		panic("dsp: DifferentialSeriesInto length mismatch")
	}
	margin := gap + win
	work.DoRanges(workers, int(p.n), func(clo, chi int) {
		lo, hi := int64(clo), int64(chi)
		ilo := max(lo, margin)
		ihi := min(hi, p.n-margin)
		if ilo >= ihi {
			for q := lo; q < hi; q++ {
				d := p.Differential(q, gap, win)
				dst[q] = math.Hypot(real(d), imag(d))
			}
			return
		}
		for q := lo; q < ilo; q++ {
			d := p.Differential(q, gap, win)
			dst[q] = math.Hypot(real(d), imag(d))
		}
		DiffSweep(p.Re, p.Im, int(ilo), gap, win, dst[ilo:ihi])
		for q := ihi; q < hi; q++ {
			d := p.Differential(q, gap, win)
			dst[q] = math.Hypot(real(d), imag(d))
		}
	})
}

// DiffSweep fills dst[i] with the differential magnitude at prefix
// index j0+i: |mean(samples [j+gap, j+gap+win)) − mean([j−gap−win,
// j−gap))| for j = j0+i, over from-origin SoA prefix arrays re/im
// (re[j] = Σ re(samples[0:j])). Every position must be interior — the
// caller guarantees j0 ≥ gap+win and j0+len(dst)+gap+win ≤ len(re) —
// so the loop carries no clamping and no branches. Bitwise equal to
// the complex128 meanRange/Differential path at each position.
func DiffSweep(re, im []float64, j0 int, gap, win int64, dst []float64) {
	g, w := int(gap), int(win)
	fw := float64(win)
	n := len(dst)
	if n == 0 {
		return
	}
	// Shifted views let the compiler hoist the bounds checks out of
	// the loop: each view is exactly n long.
	aHiR := re[j0+g+w:][:n]
	aLoR := re[j0+g:][:n]
	bHiR := re[j0-g:][:n]
	bLoR := re[j0-g-w:][:n]
	aHiI := im[j0+g+w:][:n]
	aLoI := im[j0+g:][:n]
	bHiI := im[j0-g:][:n]
	bLoI := im[j0-g-w:][:n]
	for i := 0; i < n; i++ {
		dr := (aHiR[i]-aLoR[i])/fw - (bHiR[i]-bLoR[i])/fw
		di := (aHiI[i]-aLoI[i])/fw - (bHiI[i]-bLoI[i])/fw
		dst[i] = math.Hypot(dr, di)
	}
}

// sparseBlock is the coarse-pass granularity of DiffSweepSparse.
// Smaller blocks skip more aggressively around isolated edges; larger
// blocks amortize the interval-bound test better. 64 positions sits
// between the default MinSpacing (5) and the typical inter-edge
// spacing at the paper's oversampling ratios.
const sparseBlock = 64

// DiffSweepSparse is DiffSweep with a coarse-to-fine skip: positions
// are processed in blocks, and a block whose windowed differential
// provably stays below threshold across the whole block — plus `guard`
// positions of context on each side — is zero-filled without computing
// a single divide or hypot.
//
// The proof obligation (DESIGN.md §12): for each block the kernel
// computes min/max interval bounds of the windowed sums T(q) =
// S[q+win] − S[q] over the after- and before-window ranges of every
// position in the guard-widened block, then evaluates the extreme
// differential components with the very operations the dense kernel
// uses ((T/win rounded, then subtracted)). Rounding to nearest is
// monotone, so the computed dense differential of every covered
// position lies inside the computed interval; a relative 1e-12 slack
// (three orders beyond the few-ulp hypot and square-root error) makes
// the comparison against threshold conservative. Consequently:
//
//   - a zero-filled position's dense magnitude is strictly below
//     threshold (it can never become a peak), and
//   - every position within `guard` samples of any position whose
//     dense magnitude reaches threshold is computed exactly (peak
//     candidates, their scan neighbours, and their full centroid
//     windows all read dense-identical values).
//
// intLo/intHi clamp the guard ranges to interior prefix indices —
// positions outside are blanked by the caller in both the dense and
// sparse paths, so excluding them never weakens the coverage.
func DiffSweepSparse(re, im []float64, j0 int, gap, win, guard int64, threshold float64, intLo, intHi int, dst []float64) {
	g, w := int(gap), int(win)
	gd := int(guard)
	fw := float64(win)
	n := len(dst)
	for b0 := 0; b0 < n; b0 += sparseBlock {
		b1 := min(b0+sparseBlock, n)
		glo := max(j0+b0-gd, intLo)
		ghi := min(j0+b1+gd, intHi)
		minAr, maxAr, minAi, maxAi := minMaxWin(re, im, glo+g, ghi+g, w)
		minBr, maxBr, minBi, maxBi := minMaxWin(re, im, glo-g-w, ghi-g-w, w)
		// Extreme differential components, evaluated with the dense
		// kernel's own operation sequence so rounding monotonicity
		// applies end to end.
		dloR := minAr/fw - maxBr/fw
		dhiR := maxAr/fw - minBr/fw
		boundR := math.Max(math.Abs(dloR), math.Abs(dhiR))
		dloI := minAi/fw - maxBi/fw
		dhiI := maxAi/fw - minBi/fw
		boundI := math.Max(math.Abs(dloI), math.Abs(dhiI))
		bs := math.Sqrt(boundR*boundR + boundI*boundI)
		if bs+bs*1e-12 < threshold {
			for i := b0; i < b1; i++ {
				dst[i] = 0
			}
			continue
		}
		DiffSweep(re, im, j0+b0, gap, win, dst[b0:b1])
	}
}

// minMaxWin returns the min and max of the lag-w differences
// re[q+w]−re[q] and im[q+w]−im[q] over q in [qlo, qhi) — the windowed
// sums the dense kernel divides by win. The caller guarantees a
// non-empty in-range interval.
func minMaxWin(re, im []float64, qlo, qhi, w int) (minR, maxR, minI, maxI float64) {
	n := qhi - qlo
	hiR := re[qlo+w:][:n]
	loR := re[qlo:][:n]
	hiI := im[qlo+w:][:n]
	loI := im[qlo:][:n]
	minR = hiR[0] - loR[0]
	maxR = minR
	minI = hiI[0] - loI[0]
	maxI = minI
	for i := 1; i < n; i++ {
		tr := hiR[i] - loR[i]
		if tr < minR {
			minR = tr
		}
		if tr > maxR {
			maxR = tr
		}
		ti := hiI[i] - loI[i]
		if ti < minI {
			minI = ti
		}
		if ti > maxI {
			maxI = ti
		}
	}
	return minR, maxR, minI, maxI
}
