// Int16 fixed-point companion to the SoA differential-sweep kernels.
// The sparse sweep's dominant cost in steady state is the interval
// bound test that scans every sample position of every sub-threshold
// block; running that test over int32 prefix sums of int16-quantized
// samples reads 8 bytes per position instead of the float64 pair's 16,
// halving the memory bandwidth of the edge-sweep hot path. The bound
// is conservative by a documented quantization margin, so every skip
// it takes is one the float64 kernel could also justify — positions it
// cannot certify fall through to the float64 interval test and then to
// the exact dense kernel, keeping edge decisions identical sample for
// sample (DESIGN.md §14).
//
// Quantization reads each sample back from the float64 prefix sums it
// came from — q[j] = round(scale · (Re[j+1]−Re[j])) — rather than from
// the caller's original block. That choice is what makes the error
// bound front-independent: the quantized window sum is compared
// against the very float64 prefix differences the dense kernel
// divides, so accumulated rounding in the running float64 sums cancels
// out of the bound instead of growing with capture length.
package dsp

import "math"

// QuantClip is the quantized-sample magnitude limit. The scale is
// chosen to map the calibration-time maximum component to QuantTarget,
// leaving ~2x headroom before a later, larger sample overflows int16
// and forces the quantized path off.
const (
	QuantTarget = 16000
	QuantClip   = 32767
)

// QuantErr returns the magnitude error bound between the dense float64
// differential and its quantized estimate, for quantization step
// invScale = 1/scale and per-component sample magnitude maxComp.
//
// Per component: each of the two windowed sums Σ q over win samples
// satisfies |Σq/scale − ΔP| ≤ win·(1/2)·invScale + win·ε·maxComp,
// where ΔP is the float64 prefix difference the dense kernel uses (the
// ½ is round-to-nearest on each sample, the ε·maxComp term the rounding
// of reading a sample back as a prefix difference). Dividing by win and
// differencing the two windows gives a per-component bound of
// invScale + 2·ε·maxComp; the magnitude error is at most √2 times
// that. The few-ulp rounding of the bound arithmetic itself is covered
// by the same relative 1e-12 slack the float64 sparse kernel applies.
func QuantErr(invScale, maxComp float64) float64 {
	const eps = 2.220446049250313e-16
	return math.Sqrt2 * (invScale + 2*eps*maxComp)
}

// DiffSweepSparse16 is DiffSweepSparse with a leading int16 fixed-point
// tier: each block's skip decision is first attempted against interval
// bounds computed from wrapping int32 prefix sums qre/qim of quantized
// samples (8 B/position of bandwidth), widened by qerr (see QuantErr).
// Blocks the quantized bound cannot certify retry the float64 interval
// test, and only blocks failing both run the dense kernel — so the
// output satisfies exactly the DiffSweepSparse contract: every
// zero-filled position's dense magnitude is strictly below threshold,
// and every position within guard of a threshold-crossing position is
// computed bit-identically to DiffSweep.
//
// qre/qim must be index-aligned with re/im: qre[j] is the wrapping
// int32 sum of round(scale·(Re[k+1]−Re[k])) over k < j. Wrapping is
// sound because only window differences are consumed and a window sum
// |Σ q| ≤ win·QuantClip sits far inside int32 range.
func DiffSweepSparse16(qre, qim []int32, re, im []float64, j0 int, gap, win, guard int64, qerr, invScale, threshold float64, intLo, intHi int, dst []float64) {
	g, w := int(gap), int(win)
	gd := int(guard)
	fw := float64(win)
	qs := invScale / fw
	n := len(dst)
	for b0 := 0; b0 < n; b0 += sparseBlock {
		b1 := min(b0+sparseBlock, n)
		glo := max(j0+b0-gd, intLo)
		ghi := min(j0+b1+gd, intHi)
		minAr, maxAr, minAi, maxAi := minMaxWinQ(qre, qim, glo+g, ghi+g, w)
		minBr, maxBr, minBi, maxBi := minMaxWinQ(qre, qim, glo-g-w, ghi-g-w, w)
		// Extreme quantized differential components in sample units. The
		// int window sums are exact, so monotonicity of the single
		// rounded multiply keeps every position's estimate inside the
		// interval.
		dloR := float64(minAr-maxBr) * qs
		dhiR := float64(maxAr-minBr) * qs
		boundR := math.Max(math.Abs(dloR), math.Abs(dhiR))
		dloI := float64(minAi-maxBi) * qs
		dhiI := float64(maxAi-minBi) * qs
		boundI := math.Max(math.Abs(dloI), math.Abs(dhiI))
		bs := math.Sqrt(boundR*boundR+boundI*boundI) + qerr
		if bs+bs*1e-12 < threshold {
			for i := b0; i < b1; i++ {
				dst[i] = 0
			}
			continue
		}
		// Quantized bound inconclusive: exact float64 interval test,
		// identical to DiffSweepSparse's.
		minFr, maxFr, minFi, maxFi := minMaxWin(re, im, glo+g, ghi+g, w)
		minGr, maxGr, minGi, maxGi := minMaxWin(re, im, glo-g-w, ghi-g-w, w)
		fLoR := minFr/fw - maxGr/fw
		fHiR := maxFr/fw - minGr/fw
		fBoundR := math.Max(math.Abs(fLoR), math.Abs(fHiR))
		fLoI := minFi/fw - maxGi/fw
		fHiI := maxFi/fw - minGi/fw
		fBoundI := math.Max(math.Abs(fLoI), math.Abs(fHiI))
		fs := math.Sqrt(fBoundR*fBoundR + fBoundI*fBoundI)
		if fs+fs*1e-12 < threshold {
			for i := b0; i < b1; i++ {
				dst[i] = 0
			}
			continue
		}
		DiffSweep(re, im, j0+b0, gap, win, dst[b0:b1])
	}
}

// minMaxWinQ returns the min and max of the lag-w wrapping differences
// qre[q+w]−qre[q] and qim[q+w]−qim[q] over q in [qlo, qhi). Each
// difference is the exact quantized window sum (wrap-subtraction
// recovers it as long as it fits int32, which win·QuantClip guarantees
// by a large margin).
func minMaxWinQ(qre, qim []int32, qlo, qhi, w int) (minR, maxR, minI, maxI int32) {
	n := qhi - qlo
	hiR := qre[qlo+w:][:n]
	loR := qre[qlo:][:n]
	hiI := qim[qlo+w:][:n]
	loI := qim[qlo:][:n]
	minR = hiR[0] - loR[0]
	maxR = minR
	minI = hiI[0] - loI[0]
	maxI = minI
	for i := 1; i < n; i++ {
		tr := hiR[i] - loR[i]
		if tr < minR {
			minR = tr
		}
		if tr > maxR {
			maxR = tr
		}
		ti := hiI[i] - loI[i]
		if ti < minI {
			minI = ti
		}
		if ti > maxI {
			maxI = ti
		}
	}
	return minR, maxR, minI, maxI
}
