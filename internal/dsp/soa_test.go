package dsp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// stepCapture synthesizes a noisy IQ series with a DC carrier and a few
// hard amplitude steps — the shape the edge detector actually sweeps.
func stepCapture(rng *rand.Rand, n int) []complex128 {
	samples := make([]complex128, n)
	dc := complex(2.0+rng.Float64(), -1.0+rng.Float64())
	level := complex(0, 0)
	for i := range samples {
		if rng.Intn(400) == 0 {
			level = complex(rng.Float64()*4-2, rng.Float64()*4-2)
		}
		noise := complex(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05)
		samples[i] = dc + level + noise
	}
	return samples
}

// TestPrefixSoAMatchesComplex pins the bit-identity of the SoA prefix
// path against the complex128 reference at every position: means,
// differentials, and the full swept series.
func TestPrefixSoAMatchesComplex(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		n := 257 + rng.Intn(2000)
		samples := stepCapture(rng, n)
		ref := NewPrefix(samples)
		soa := NewPrefixSoA(samples)

		for q := int64(0); q < int64(n); q++ {
			if got, want := soa.Mean(q, q+7), ref.Mean(q, q+7); got != want {
				t.Fatalf("Mean(%d): soa %v != complex %v", q, got, want)
			}
			if got, want := soa.Differential(q, 2, 3), ref.Differential(q, 2, 3); got != want {
				t.Fatalf("Differential(%d): soa %v != complex %v", q, got, want)
			}
		}

		want := make([]float64, n)
		ref.DifferentialSeriesInto(want, 2, 3, 1)
		for _, workers := range []int{1, 3} {
			got := make([]float64, n)
			soa.DifferentialSeriesInto(got, 2, 3, workers)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("series[%d] workers=%d: soa %v != complex %v", i, workers, got[i], want[i])
				}
			}
		}
		ref.Release()
		soa.Release()
	}
}

// checkSparseContract verifies the DiffSweepSparse output contract
// against a dense reference: every position is either bitwise equal to
// dense, or zero-filled with a dense value strictly below threshold AND
// no position within guard of it at or above threshold.
func checkSparseContract(t *testing.T, dense, sparse []float64, threshold float64, guard int) {
	t.Helper()
	for i := range sparse {
		if sparse[i] == dense[i] {
			continue
		}
		if sparse[i] != 0 {
			t.Fatalf("pos %d: sparse %v is neither dense %v nor zero", i, sparse[i], dense[i])
		}
		if dense[i] >= threshold {
			t.Fatalf("pos %d: zero-filled but dense %v >= threshold %v", i, dense[i], threshold)
		}
		for j := max(0, i-guard); j < min(len(dense), i+guard+1); j++ {
			if dense[j] >= threshold {
				t.Fatalf("pos %d zero-filled but neighbour %d has dense %v >= threshold %v", i, j, dense[j], threshold)
			}
		}
	}
}

func TestDiffSweepSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const gap, win = int64(2), int64(3)
	const guard = gap + 2
	margin := int(gap + win)
	for trial := 0; trial < 6; trial++ {
		n := 500 + rng.Intn(4000)
		samples := stepCapture(rng, n)
		soa := NewPrefixSoA(samples)
		j0 := margin
		m := n - 2*margin
		dense := make([]float64, m)
		DiffSweep(soa.Re, soa.Im, j0, gap, win, dense)
		// Thresholds spanning "skip almost everything" to "skip nothing".
		for _, thr := range []float64{0.01, 0.2, 1.0, 5.0} {
			sparse := make([]float64, m)
			DiffSweepSparse(soa.Re, soa.Im, j0, gap, win, guard, thr, margin, n-margin, sparse)
			checkSparseContract(t, dense, sparse, thr, int(guard))
		}
		soa.Release()
	}
}

// FuzzDiffSweepSparse drives the sparse kernel with fuzzer-chosen
// signal shape parameters and asserts the skip-bound contract. Inputs
// are sanitized to finite samples — the stream rejects non-finite IQ
// before the sweep, and the interval bound is only claimed for finite
// sums.
func FuzzDiffSweepSparse(f *testing.F) {
	f.Add(int64(1), uint16(900), 0.2, 0.05)
	f.Add(int64(2), uint16(3000), 1.5, 0.3)
	f.Add(int64(99), uint16(500), 0.001, 0.0)
	f.Fuzz(func(t *testing.T, seed int64, sz uint16, thr, noise float64) {
		n := int(sz)%5000 + 64
		if !(thr >= 0 && thr < 1e6) || !(noise >= 0 && noise < 1e3) {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		samples := make([]complex128, n)
		level := complex(1, -1)
		for i := range samples {
			if rng.Intn(300) == 0 {
				level = complex(rng.Float64()*6-3, rng.Float64()*6-3)
			}
			samples[i] = level + complex(rng.NormFloat64()*noise, rng.NormFloat64()*noise)
		}
		const gap, win = int64(2), int64(3)
		const guard = gap + 2
		margin := int(gap + win)
		m := n - 2*margin
		if m <= 0 {
			t.Skip()
		}
		soa := NewPrefixSoA(samples)
		defer soa.Release()
		dense := make([]float64, m)
		DiffSweep(soa.Re, soa.Im, margin, gap, win, dense)
		sparse := make([]float64, m)
		DiffSweepSparse(soa.Re, soa.Im, margin, gap, win, guard, thr, margin, n-margin, sparse)
		checkSparseContract(t, dense, sparse, thr, int(guard))
	})
}

// TestMedianFloatMatchesSort pins the quickselect median against the
// sorted-slice definition on random data, heavy ties, and NaNs.
func TestMedianFloatMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sortedMedian := func(xs []float64) float64 {
		cp := append([]float64(nil), xs...)
		sort.Float64s(cp)
		m := len(cp) / 2
		if len(cp)%2 == 1 {
			return cp[m]
		}
		return (cp[m-1] + cp[m]) / 2
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			switch rng.Intn(10) {
			case 0:
				xs[i] = math.NaN()
			case 1, 2, 3:
				xs[i] = float64(rng.Intn(4)) // heavy ties
			default:
				xs[i] = rng.NormFloat64() * 100
			}
		}
		orig := append([]float64(nil), xs...)
		got := MedianFloat(xs)
		want := sortedMedian(orig)
		same := got == want || (math.IsNaN(got) && math.IsNaN(want))
		if !same {
			t.Fatalf("trial %d (n=%d): MedianFloat %v != sorted median %v", trial, n, got, want)
		}
		for i := range xs {
			o := orig[i]
			if xs[i] != o && !(math.IsNaN(xs[i]) && math.IsNaN(o)) {
				t.Fatalf("trial %d: input mutated at %d", trial, i)
			}
		}
	}
}

// suppressReference is the textbook O(n²) greedy NMS under the same
// total order (value desc, position asc) — the semantics Suppress must
// preserve.
func suppressReference(peaks []Peak, minSpacing int64) []Peak {
	if len(peaks) <= 1 {
		return append([]Peak(nil), peaks...)
	}
	byValue := append([]Peak(nil), peaks...)
	sortPeaksByValue(byValue)
	var kept []Peak
	if minSpacing < 1 {
		kept = byValue
	} else {
		for _, p := range byValue {
			ok := true
			for _, k := range kept {
				d := p.Pos - k.Pos
				if d < 0 {
					d = -d
				}
				if d < minSpacing {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, p)
			}
		}
	}
	sortPeaksByPos(kept)
	return kept
}

func TestSuppressMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(120)
		peaks := make([]Peak, n)
		for i := range peaks {
			peaks[i] = Peak{
				Pos:   int64(rng.Intn(300)) - 50, // includes negatives
				Value: float64(rng.Intn(8)),      // heavy value ties
			}
		}
		spacing := int64(rng.Intn(12)) // includes 0
		got := Suppress(peaks, spacing)
		want := suppressReference(peaks, spacing)
		if len(got) != len(want) {
			t.Fatalf("trial %d spacing=%d: got %d peaks, want %d", trial, spacing, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d spacing=%d: peak %d got %+v want %+v", trial, spacing, i, got[i], want[i])
			}
		}
	}
}

// BenchmarkSuppressDense is the regression benchmark for the O(n²)
// kept-peak scan: a spurious-edge flood where nearly every position is
// a candidate peak. The cell-grid pass keeps this O(n log n).
func BenchmarkSuppressDense(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	peaks := make([]Peak, 20000)
	for i := range peaks {
		peaks[i] = Peak{Pos: int64(i * 2), Value: rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Suppress(peaks, 5)
	}
}
