package dsp

import (
	"math"
	"math/rand"
	"testing"
)

const repairMaxMag = 1e150 // mirrors edgedetect's maxSampleMag

// foldReference is the detector's fold: a plain sequential left
// accumulation of components into from-origin prefix arrays.
func foldReference(samples []complex128) (re, im []float64) {
	re = make([]float64, len(samples)+1)
	im = make([]float64, len(samples)+1)
	var ar, ai float64
	for j, v := range samples {
		ar += real(v)
		ai += imag(v)
		re[j+1] = ar
		im[j+1] = ai
	}
	return re, im
}

func TestRepairPrefixMatchesFullFold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 64; trial++ {
		n := 1 + rng.Intn(512)
		orig := make([]complex128, n)
		for i := range orig {
			orig[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		re, im := foldReference(orig)

		// Mutate a dirty suffix starting at a random cut, then repair
		// from the cut and compare against a from-scratch fold of the
		// mutated samples — bitwise.
		cut := rng.Intn(n + 1)
		mutated := append([]complex128(nil), orig...)
		for i := cut; i < n; i++ {
			if rng.Intn(2) == 0 {
				mutated[i] -= complex(rng.NormFloat64(), rng.NormFloat64())
			}
		}
		if bad := RepairPrefix(re, im, mutated, cut, repairMaxMag); bad != -1 {
			t.Fatalf("trial %d: unexpected bad sample at %d", trial, bad)
		}
		wantRe, wantIm := foldReference(mutated)
		for j := range wantRe {
			if re[j] != wantRe[j] || im[j] != wantIm[j] {
				t.Fatalf("trial %d cut %d: prefix[%d] = (%v,%v), want (%v,%v)",
					trial, cut, j, re[j], im[j], wantRe[j], wantIm[j])
			}
		}
	}
}

func TestRepairPrefixRejectsBadSamples(t *testing.T) {
	samples := []complex128{1 + 1i, 2, complex(math.NaN(), 0), 4}
	re := make([]float64, len(samples)+1)
	im := make([]float64, len(samples)+1)
	if bad := RepairPrefix(re, im, samples, 0, repairMaxMag); bad != 2 {
		t.Fatalf("NaN sample: bad = %d, want 2", bad)
	}
	samples[2] = complex(0, math.Inf(1))
	if bad := RepairPrefix(re, im, samples, 0, repairMaxMag); bad != 2 {
		t.Fatalf("Inf sample: bad = %d, want 2", bad)
	}
	samples[2] = complex(repairMaxMag, 0) // at the bound: rejected, like sampleOK
	if bad := RepairPrefix(re, im, samples, 0, repairMaxMag); bad != 2 {
		t.Fatalf("overflow-magnitude sample: bad = %d, want 2", bad)
	}
	samples[2] = complex(-repairMaxMag/2, 0)
	if bad := RepairPrefix(re, im, samples, 0, repairMaxMag); bad != -1 {
		t.Fatalf("admissible sample rejected: bad = %d", bad)
	}
	// Repair from past the bad index never observes it.
	samples[2] = complex(math.NaN(), 0)
	re[3], im[3] = 7, 9 // arbitrary committed accumulator at the cut
	if bad := RepairPrefix(re, im, samples, 3, repairMaxMag); bad != -1 {
		t.Fatalf("repair past bad sample: bad = %d", bad)
	}
	if re[4] != 7+4 || im[4] != 9 {
		t.Fatalf("repair past bad sample: got (%v,%v), want (11,9)", re[4], im[4])
	}
}

// FuzzPrefixRepair fuzzes the subtract-and-repair contract: folding a
// capture, mutating an arbitrary suffix, and repairing from the cut
// must be bitwise identical to refolding the mutated capture from
// scratch — or must stop at exactly the first inadmissible sample.
func FuzzPrefixRepair(f *testing.F) {
	f.Add(int64(1), 16, 4)
	f.Add(int64(99), 1, 0)
	f.Add(int64(3), 300, 299)
	f.Fuzz(func(t *testing.T, seed int64, n, cut int) {
		if n < 1 || n > 4096 {
			return
		}
		if cut < 0 || cut > n {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		samples := make([]complex128, n)
		for i := range samples {
			// Mostly ordinary magnitudes with occasional huge, tiny,
			// negative-zero, and non-finite values.
			switch rng.Intn(12) {
			case 0:
				samples[i] = complex(math.Inf(1), 0)
			case 1:
				samples[i] = complex(0, math.NaN())
			case 2:
				samples[i] = complex(repairMaxMag*2, -repairMaxMag*2)
			case 3:
				samples[i] = complex(math.Copysign(0, -1), 0)
			default:
				samples[i] = complex(rng.NormFloat64()*1e3, rng.NormFloat64()*1e-3)
			}
		}
		firstBad := -1
		for i := cut; i < n; i++ {
			v := samples[i]
			sr, si := real(v), imag(v)
			if math.IsNaN(sr) || math.IsNaN(si) ||
				sr >= repairMaxMag || sr <= -repairMaxMag ||
				si >= repairMaxMag || si <= -repairMaxMag {
				firstBad = i
				break
			}
		}

		// Seed the arrays with a clean-prefix fold (the committed state
		// a prior round would have left) and garbage past the cut.
		re := make([]float64, n+1)
		im := make([]float64, n+1)
		var ar, ai float64
		for j := 0; j < cut; j++ {
			ar += real(samples[j])
			ai += imag(samples[j])
			re[j+1] = ar
			im[j+1] = ai
		}
		for j := cut + 1; j <= n; j++ {
			re[j], im[j] = math.NaN(), math.NaN()
		}

		bad := RepairPrefix(re, im, samples, cut, repairMaxMag)
		if bad != firstBad {
			t.Fatalf("bad index = %d, want %d", bad, firstBad)
		}
		if bad != -1 {
			return // fold abandoned; caller falls back to the push path
		}
		// Bitwise comparison: a bad sample below the cut can leave a NaN
		// accumulator at re[cut], which must propagate identically.
		accRe, accIm := re[cut], im[cut]
		for j := cut; j < n; j++ {
			accRe += real(samples[j])
			accIm += imag(samples[j])
			if math.Float64bits(re[j+1]) != math.Float64bits(accRe) ||
				math.Float64bits(im[j+1]) != math.Float64bits(accIm) {
				t.Fatalf("prefix[%d] = (%v,%v), want (%v,%v)", j+1, re[j+1], im[j+1], accRe, accIm)
			}
		}
	})
}
